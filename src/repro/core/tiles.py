"""Logical processor grid and image tiling (Section 3 of the paper).

For ``p = 2^d`` processors the paper arranges a ``v x w`` logical grid
with ``v = 2^floor(d/2)`` rows and ``w = 2^ceil(d/2)`` columns (square
when ``d`` is even, twice as wide as tall when odd).  Processors are
assigned to grid positions in row-major order.  An ``n x n`` image is
split into tiles of ``q x r = n/v x n/w`` pixels; processor at grid
position ``(I, J)`` owns the tile whose top-left global pixel is
``(I q, J r)``.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ConfigurationError
from repro.utils.validation import check_image, ilog2


class ProcessorGrid:
    """The ``v x w`` logical grid of ``p`` processors over an image.

    The paper's setting is an ``n x n`` image (pass an int); rectangular
    ``rows x cols`` images are supported as an extension (pass a
    ``(rows, cols)`` tuple) -- the grid shape only depends on ``p``, and
    tiles become ``rows/v x cols/w``.

    Attributes
    ----------
    p:
        Processor count (power of two).
    rows, cols:
        Image dimensions; ``n`` is an alias for ``rows`` on square
        images (reading it on a rectangular grid raises).
    v, w:
        Grid rows and columns (``v * w == p``, ``w in (v, 2v)``).
    q, r:
        Tile height ``rows/v`` and width ``cols/w`` in pixels.
    """

    def __init__(self, p: int, n):
        if not isinstance(p, (int, np.integer)) or p <= 0 or (p & (p - 1)) != 0:
            raise ConfigurationError(f"p must be a power of two, got {p!r}")
        if isinstance(n, (int, np.integer)):
            rows = cols = int(n)
        else:
            try:
                rows, cols = (int(x) for x in n)
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"n must be an int or a (rows, cols) pair, got {n!r}"
                ) from None
        if rows <= 0 or cols <= 0:
            raise ConfigurationError(f"image dimensions must be positive, got {rows}x{cols}")
        d = ilog2(p)
        self.p = p
        self.rows = rows
        self.cols = cols
        self.v = 1 << (d // 2)
        self.w = 1 << (d - d // 2)
        if rows % self.v != 0 or cols % self.w != 0:
            raise ConfigurationError(
                f"grid {self.v}x{self.w} does not divide image {rows}x{cols}"
            )
        self.q = rows // self.v
        self.r = cols // self.w
        if p > rows * cols:
            raise ConfigurationError(f"p={p} exceeds pixel count {rows * cols}")

    @property
    def n(self) -> int:
        """Image side for square images (the paper's ``n``)."""
        if self.rows != self.cols:
            raise ConfigurationError(
                f"grid covers a rectangular {self.rows}x{self.cols} image; use "
                ".rows/.cols"
            )
        return self.rows

    # -- coordinates -------------------------------------------------------

    def coords(self, pid: int) -> tuple[int, int]:
        """Grid position ``(I, J)`` of processor ``pid`` (row-major)."""
        if not (0 <= pid < self.p):
            raise ConfigurationError(f"pid {pid} out of range [0, {self.p})")
        return pid // self.w, pid % self.w

    def pid_at(self, I: int, J: int) -> int:
        """Processor at grid position ``(I, J)``."""
        if not (0 <= I < self.v and 0 <= J < self.w):
            raise ConfigurationError(
                f"grid position ({I}, {J}) out of range {self.v}x{self.w}"
            )
        return I * self.w + J

    def tile_origin(self, pid: int) -> tuple[int, int]:
        """Global pixel coordinates of the tile's top-left corner."""
        I, J = self.coords(pid)
        return I * self.q, J * self.r

    def tile_slices(self, pid: int) -> tuple[slice, slice]:
        """Row/column slices selecting processor ``pid``'s tile."""
        r0, c0 = self.tile_origin(pid)
        return slice(r0, r0 + self.q), slice(c0, c0 + self.r)

    # -- data movement (initial placement / final collection) --------------

    def scatter(self, image: np.ndarray) -> list[np.ndarray]:
        """Split an image into the per-processor tiles (copies).

        This is the *initial data placement* the BDM model allows for
        free; it is not communication.
        """
        image = check_image(image, square=False)
        if image.shape != (self.rows, self.cols):
            raise ConfigurationError(
                f"image shape {image.shape} does not match grid "
                f"{self.rows}x{self.cols}"
            )
        return [image[self.tile_slices(pid)].copy() for pid in range(self.p)]

    def gather(self, tiles: list[np.ndarray], dtype=None) -> np.ndarray:
        """Reassemble per-processor tiles into a full image (diagnostic)."""
        if len(tiles) != self.p:
            raise ConfigurationError(
                f"expected {self.p} tiles, got {len(tiles)}"
            )
        dtype = dtype if dtype is not None else np.asarray(tiles[0]).dtype
        out = np.empty((self.rows, self.cols), dtype=dtype)
        for pid, tile in enumerate(tiles):
            tile = np.asarray(tile)
            if tile.shape != (self.q, self.r):
                raise ConfigurationError(
                    f"tile {pid} has shape {tile.shape}, expected {(self.q, self.r)}"
                )
            out[self.tile_slices(pid)] = tile
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProcessorGrid(p={self.p}, image={self.rows}x{self.cols}, grid={self.v}x{self.w}, "
            f"tile={self.q}x{self.r})"
        )


# -- tile border helpers -------------------------------------------------


def edge_indices(q: int, r: int, edge: str) -> np.ndarray:
    """Flat (row-major) indices of one edge of a ``q x r`` tile.

    ``edge`` is one of ``"top"``, ``"bottom"``, ``"left"``, ``"right"``.
    Indices run left-to-right for horizontal edges and top-to-bottom for
    vertical ones, so concatenating one edge across a stack of tiles
    yields the border in global scan order.
    """
    if edge == "top":
        return np.arange(r, dtype=np.int64)
    if edge == "bottom":
        return np.arange(r, dtype=np.int64) + (q - 1) * r
    if edge == "left":
        return np.arange(q, dtype=np.int64) * r
    if edge == "right":
        return np.arange(q, dtype=np.int64) * r + (r - 1)
    raise ConfigurationError(f"unknown edge {edge!r}")


def perimeter_indices(q: int, r: int) -> np.ndarray:
    """Flat indices of all border pixels of a ``q x r`` tile (sorted, unique)."""
    parts = [
        edge_indices(q, r, "top"),
        edge_indices(q, r, "bottom"),
        edge_indices(q, r, "left"),
        edge_indices(q, r, "right"),
    ]
    return np.unique(np.concatenate(parts))

"""Parallel histogram equalization (the application of Section 4).

"One application is histogram normalization (or equalization), a
technique that flattens the histogram and, thus, improves the contrast
of an image by 'spreading out' colors which might be too clumped
together."  This module completes that pipeline on the BDM machine:

1. the parallel histogramming algorithm leaves ``H[0..k-1]`` on ``P0``;
2. ``P0`` builds the equalization look-up table from the cumulative
   distribution (``O(k)`` local work);
3. the LUT is **broadcast** to all processors with Algorithm 2
   (two matrix transpositions, ``T_comm = 2(tau + k - k/p)``);
4. every processor remaps its tile through the LUT (``O(n^2/p)``).

Level 0 (background) is kept fixed so component structure survives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bdm.broadcast import broadcast
from repro.bdm.cost import MachineReport
from repro.bdm.machine import Machine
from repro.bdm.memory import GlobalArray
from repro.bdm.transpose import gather_to, transpose
from repro.core.costs import CostParams, DEFAULT_COSTS
from repro.core.tiles import ProcessorGrid
from repro.machines.params import MachineParams, IDEAL
from repro.utils.errors import ValidationError
from repro.utils.validation import check_image, check_power_of_two


@dataclass
class EqualizationResult:
    """Output of :func:`parallel_equalize`."""

    image: np.ndarray
    lut: np.ndarray
    histogram: np.ndarray
    report: MachineReport
    grid: ProcessorGrid

    @property
    def elapsed_s(self) -> float:
        return self.report.elapsed_s


def equalization_lut(histogram: np.ndarray, *, preserve_background: bool = True) -> np.ndarray:
    """The classic CDF-based equalization map over ``k`` levels."""
    histogram = np.asarray(histogram, dtype=np.int64)
    k = len(histogram)
    cdf = np.cumsum(histogram)
    total = int(cdf[-1])
    if total == 0:
        return np.arange(k, dtype=np.int64)
    nonzero = cdf > 0
    cdf_min = int(cdf[nonzero][0])
    span = max(total - cdf_min, 1)
    lut = np.clip(np.round((cdf - cdf_min) / span * (k - 1)), 0, k - 1).astype(np.int64)
    if preserve_background:
        lut[0] = 0
    return lut


def parallel_equalize(
    image: np.ndarray,
    k: int,
    p: int,
    machine_params: MachineParams = IDEAL,
    *,
    costs: CostParams = DEFAULT_COSTS,
    preserve_background: bool = True,
    check_hazards: bool = True,
) -> EqualizationResult:
    """Equalize an image's histogram on ``p`` processors.

    Returns the equalized image, the LUT, the original histogram, and
    the simulated cost report (phases ``hist:*``, ``eq:lut``,
    ``eq:broadcast:*``, ``eq:apply``).
    """
    image = check_image(image, square=False)
    check_power_of_two("k", k)
    if image.max(initial=0) >= k:
        raise ValidationError(f"image has grey levels >= k={k}")

    grid = ProcessorGrid(p, image.shape)
    machine = Machine(p, machine_params, check_hazards=check_hazards)
    tiles = grid.scatter(image)
    tile_pixels = grid.q * grid.r

    # --- steps 1-2 of the histogramming algorithm (local tally +
    # transpose + reduce), then collect on P0.
    H = GlobalArray(machine, k, dtype=np.int64, name="H")
    with machine.phase("hist:tally"):
        for proc in machine.procs:
            tally = np.bincount(tiles[proc.pid].ravel(), minlength=k)
            H.write(proc, proc.pid, tally)
            proc.charge_comp(costs.hist_tally_per_pixel * tile_pixels + k)
    HT = transpose(machine, H, phase_name="hist:transpose")
    if k >= p:
        size = k // p
        R = GlobalArray(machine, size, dtype=np.int64, name="R")
        with machine.phase("hist:reduce"):
            for proc in machine.procs:
                sums = HT.local(proc.pid).reshape(p, size).sum(axis=0)
                R.write(proc, proc.pid, sums)
                proc.charge_comp(costs.hist_reduce_per_word * k)
    else:
        lengths = [1 if i < k else 0 for i in range(p)]
        R = GlobalArray(machine, lengths, dtype=np.int64, name="R")
        with machine.phase("hist:reduce"):
            for proc in machine.procs:
                if proc.pid < k:
                    R.write(proc, proc.pid, [int(HT.local(proc.pid).sum())])
                    proc.charge_comp(costs.hist_reduce_per_word * p)
    histogram = gather_to(machine, R, root=0, phase_name="hist:collect")

    # --- step 3: P0 builds the LUT locally.
    padded_len = max(k, p)
    if padded_len % p != 0:
        padded_len += p - padded_len % p
    L = GlobalArray(machine, padded_len, dtype=np.int64, name="LUT")
    with machine.phase("eq:lut"):
        proc0 = machine.procs[0]
        lut = equalization_lut(histogram, preserve_background=preserve_background)
        padded = np.zeros(padded_len, dtype=np.int64)
        padded[:k] = lut
        L.write(proc0, 0, padded)
        proc0.charge_comp(3.0 * k)

    # --- step 4: broadcast the LUT (Algorithm 2) and apply per tile.
    LB = broadcast(machine, L, phase_name="eq:broadcast")
    out_tiles: list[np.ndarray] = []
    with machine.phase("eq:apply"):
        for proc in machine.procs:
            local_lut = LB.local(proc.pid)[:k]
            out_tiles.append(local_lut[tiles[proc.pid]].astype(image.dtype))
            proc.charge_comp(2.0 * tile_pixels)

    equalized = grid.gather(out_tiles, dtype=image.dtype)
    return EqualizationResult(
        image=equalized,
        lut=lut,
        histogram=histogram,
        report=machine.report(),
        grid=grid,
    )

"""Abstract operation counts charged by the core algorithms.

The BDM simulator charges local computation in *abstract operations*
that the machine parameters convert to simulated seconds
(:meth:`~repro.machines.params.MachineParams.comp_time_s`).  The
per-primitive operation counts live here so that (a) every algorithm
charges consistently and (b) calibration/ablation can adjust them in
one place.

The counts model the paper's sequential building blocks on early-90s
RISC nodes: a BFS labeling visit touches a queue, examines up to eight
neighbors and writes a label (tens of instructions per pixel); a
histogram tally is a load plus an indexed increment; and so on.  The
defaults were sanity-checked against the paper's Table 1/Table 2
work-per-pixel figures (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np


@dataclass(frozen=True)
class CostParams:
    """Tunable abstract-operation counts for the core algorithms."""

    #: Histogram tally: load pixel + indexed increment.
    hist_tally_per_pixel: float = 2.0
    #: Reduction of per-processor partial histograms: one add per word.
    hist_reduce_per_word: float = 1.0

    #: Initial per-tile labeling (binary): BFS visit incl. neighbor scans.
    label_per_pixel_binary: float = 60.0
    #: Grey-scale labeling revisits unequal-colored neighbors.
    label_per_pixel_grey: float = 80.0

    #: Tile-hook creation per border pixel (Procedure 2, before sort).
    hooks_per_border_pixel: float = 3.0

    #: Border-graph construction per vertex (adjacency-list inserts,
    #: <= 5 edges per vertex).
    graph_build_per_vertex: float = 10.0
    #: Sequential CC on the border graph per vertex (BFS, |E| <= 5|V|).
    graph_cc_per_vertex: float = 20.0
    #: Change-array creation per entry (Procedure 1, before sort).
    change_per_entry: float = 5.0

    #: Border label update: binary search + conditional store, charged
    #: per border pixel per log2(|changes|) step.
    update_search_per_step: float = 2.0

    #: Final interior relabel per pixel (hook lookup + store).
    relabel_per_pixel: float = 20.0

    #: Sort cost per key per radix pass (3 touches) -- forwarded to the
    #: sorting-ops helpers.
    sort_per_key_pass: float = 3.0

    def with_(self, **kwargs) -> "CostParams":
        """Copy with some fields replaced (for ablations)."""
        return replace(self, **kwargs)

    # -- derived helpers ---------------------------------------------------

    def binary_search_ops(self, n_items: int, list_len: int) -> float:
        """Ops for ``n_items`` binary searches over a ``list_len`` list."""
        if n_items <= 0 or list_len <= 0:
            return 0.0
        steps = max(1.0, float(np.ceil(np.log2(list_len + 1))))
        return self.update_search_per_step * n_items * steps

    def label_per_pixel(self, grey: bool) -> float:
        return self.label_per_pixel_grey if grey else self.label_per_pixel_binary


#: The calibrated defaults used throughout benchmarks.
DEFAULT_COSTS = CostParams()

"""The full connected components algorithm as an SPMD program.

The paper's Sections 5.3-5.4 describe the merge iterations from two
perspectives -- the group managers' task and the clients' task -- as
the divergent control flow of ONE per-processor program.  This module
writes the algorithm exactly that way on the generator executor
(:func:`repro.bdm.spmd.run_spmd`); the phase-style implementation in
:mod:`repro.core.connected_components` remains the configurable
production path (this one fixes the paper's defaults: shadow manager
on, direct change distribution, limited updating).

Per merge iteration every processor executes the same seven supersteps
(clients simply pass through the manager-only ones):

1. managers/shadows issue split-phase prefetches of their border side;
2. both sort their side by label; the shadow publishes its sorted side;
3. the manager prefetches the shadow's sorted side;
4. the manager solves the border graph and publishes the change array;
5. every processor of the region prefetches ``chSize`` from its manager;
6. ... then the ``(alpha, beta)`` pairs themselves (equation (8)'s two
   prefetch rounds);
7. every processor relabels its own tile-border pixels by binary search.

Output is bit-identical to the phase implementation and the sequential
engines; communication costs agree (the extra supersteps only add
barrier overhead), which the tests assert.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.sequential import ENGINES
from repro.bdm.machine import Machine
from repro.bdm.spmd import SpmdContext, run_spmd
from repro.core.border_graph import BorderSide, solve_border_merge
from repro.core.change_array import ChangeArray, apply_changes
from repro.core.costs import CostParams, DEFAULT_COSTS
from repro.core.hooks import apply_hooks, create_tile_hooks, hook_ops
from repro.core.merge import merge_schedule
from repro.core.tiles import ProcessorGrid, edge_indices, perimeter_indices
from repro.machines.params import MachineParams, IDEAL
from repro.sorting.hybrid import hybrid_argsort, hybrid_sort_ops
from repro.utils.errors import ValidationError
from repro.utils.validation import check_image


def spmd_components(
    image: np.ndarray,
    p: int,
    machine_params: MachineParams = IDEAL,
    *,
    connectivity: int = 8,
    grey: bool = False,
    engine: str = "runs",
    costs: CostParams = DEFAULT_COSTS,
):
    """Label connected components via the SPMD program.

    Returns ``(labels, machine)``; the machine carries the cost report.
    """
    image = check_image(image, square=False)
    if engine not in ENGINES:
        raise ValidationError(f"unknown engine {engine!r}; known: {sorted(ENGINES)}")
    label_fn = ENGINES[engine]

    grid = ProcessorGrid(p, image.shape)
    stride = grid.cols
    q, r = grid.q, grid.r
    machine = Machine(p, machine_params)
    tiles = grid.scatter(image)
    schedule = merge_schedule(grid)

    # Per-step role maps: every processor belongs to exactly one group.
    roles = []
    for step in schedule:
        by_pid = {}
        for group in step.groups:
            for pid in group.region:
                by_pid[pid] = group
        roles.append(by_pid)

    border_idx = perimeter_indices(q, r)
    edge_cache = {name: edge_indices(q, r, name) for name in ("top", "bottom", "left", "right")}
    tile_pixels = q * r
    max_side = max(grid.v * q, grid.w * r)  # largest border side in pixels
    chg_capacity = 1 + 4 * max_side  # size word + alphas + betas

    def program(ctx: SpmdContext):
        labels = ctx.array("labels", tile_pixels)
        colors = ctx.array("colors", tile_pixels)
        side_lab = ctx.array("side_lab", max_side)
        side_col = ctx.array("side_col", max_side)
        chg = ctx.array("chg", chg_capacity)

        # ---- initial labeling + hooks (Sections 5.1, Procedure 2).
        I, J = grid.coords(ctx.pid)
        lab = label_fn(
            tiles[ctx.pid],
            connectivity=connectivity,
            grey=grey,
            label_base=1,
            label_stride=stride,
            row_offset=I * q,
            col_offset=J * r,
        )
        ctx.write(labels, lab.ravel())
        ctx.write(colors, tiles[ctx.pid].ravel())
        ctx.charge(costs.label_per_pixel(grey) * tile_pixels)
        hooks = create_tile_hooks(lab)
        bp = hook_ops(q, r)
        ctx.charge(costs.hooks_per_border_pixel * bp + hybrid_sort_ops(bp))
        yield ctx.barrier()

        for step, by_pid in zip(schedule, roles):
            group = by_pid[ctx.pid]
            edge_a, edge_b = step.edge_names
            i_manage = ctx.pid == group.manager
            i_shadow = ctx.pid == group.shadow
            side_len = len(edge_cache[edge_a]) * len(group.side_a_pids)

            # (1) managers and shadows prefetch their border side.
            handles = []
            if i_manage or i_shadow:
                pids = group.side_a_pids if i_manage else group.side_b_pids
                edge = edge_cache[edge_a if i_manage else edge_b]
                for pid in pids:
                    handles.append(
                        (
                            ctx.prefetch_indices(labels, pid, edge),
                            ctx.prefetch_indices(colors, pid, edge),
                        )
                    )
            yield ctx.sync()

            # (2) sort by label; the shadow publishes its sorted side.
            my_side = None
            if i_manage or i_shadow:
                lab_side = np.concatenate([h.value for h, _ in handles])
                col_side = np.concatenate([c.value for _, c in handles])
                order = hybrid_argsort(lab_side)
                ctx.charge(hybrid_sort_ops(side_len))
                if i_shadow:
                    # Publish sorted labels/colors plus the permutation's
                    # inverse is unnecessary: the manager rebuilds the
                    # positional view it needs from the raw side, so we
                    # publish the side in *position* order (the sort cost
                    # is what the shadow contributes).
                    ctx.write(side_lab, lab_side, start=0)
                    ctx.write(side_col, col_side, start=0)
                if i_manage:
                    my_side = BorderSide(lab_side, col_side)
                del order
            yield ctx.barrier()

            # (3) the manager prefetches the shadow's (sorted) side.
            other_handles = None
            if i_manage:
                other_handles = (
                    ctx.prefetch(side_lab, group.shadow, 0, side_len),
                    ctx.prefetch(side_col, group.shadow, 0, side_len),
                )
            yield ctx.sync()

            # (4) the manager solves the border graph and publishes the
            # sorted change array (Procedures 1 and the graph CC).
            if i_manage:
                other = BorderSide(other_handles[0].value, other_handles[1].value)
                solve = solve_border_merge(
                    my_side, other, connectivity=connectivity, grey=grey
                )
                ctx.charge(
                    costs.graph_build_per_vertex * solve.n_vertices
                    + costs.graph_cc_per_vertex * solve.n_vertices
                    + costs.change_per_entry * len(solve.changes)
                    + hybrid_sort_ops(len(solve.changes))
                )
                words = solve.changes.to_words()
                ctx.write(chg, [len(solve.changes)], start=0)
                if len(words):
                    ctx.write(chg, words, start=1)
            yield ctx.barrier()

            # (5) everyone prefetches chSize from its manager ...
            size_handle = ctx.prefetch(chg, group.manager, 0, 1)
            yield ctx.sync()

            # (6) ... then the change pairs themselves.
            n_changes = int(size_handle.value[0])
            list_handle = None
            if n_changes:
                list_handle = ctx.prefetch(chg, group.manager, 1, 1 + 2 * n_changes)
            yield ctx.sync()

            # (7) drastically limited updating: border pixels only.
            if n_changes:
                changes = ChangeArray.from_words(list_handle.value)
                cur = ctx.read_local(labels)[border_idx]
                ctx.write_indices(labels, border_idx, apply_changes(cur, changes))
                ctx.charge(costs.binary_search_ops(len(border_idx), n_changes))
            yield ctx.barrier()

        # ---- final consistency update via the tile hooks.
        current = ctx.read_local(labels).reshape(q, r)
        final = apply_hooks(current, hooks)
        ctx.write(labels, final.ravel())
        ctx.charge(costs.relabel_per_pixel * tile_pixels)
        yield ctx.barrier()
        return final

    results = run_spmd(machine, program)
    full = grid.gather(results, dtype=np.int64)
    return full, machine

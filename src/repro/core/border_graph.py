"""Border graphs: the graph problem solved by a group manager.

When two sub-image regions merge, the only pixels whose connectivity
matters are those on the two sides of the shared border line.  The
manager builds a graph whose vertices are the colored border pixels and
whose edges are (Section 5.3):

1. *within-side* edges, "strung linearly down the list between pixels
   containing the same connected component label" after sorting each
   side by label -- these encode that same-labeled pixels are already
   connected inside their region (at most one chain edge per vertex);
2. *cross-border* edges between adjacent like-colored pixels of the two
   sides (positions ``j`` vs ``j-1, j, j+1`` under 8-connectivity,
   ``j`` only under 4-connectivity).

Each vertex therefore has at most five incident edges, as the paper
notes.  A sequential CC pass over this graph (union-find here; the
paper's BFS is equivalent) yields, per component, the minimum label,
and every vertex whose label differs from that minimum contributes a
``(alpha, beta)`` change pair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.union_find import UnionFind
from repro.core.change_array import ChangeArray, create_change_array
from repro.sorting.hybrid import hybrid_argsort
from repro.utils.errors import ValidationError


@dataclass
class BorderSide:
    """One side of a border: per-position labels and pixel colors.

    Positions run in scan order along the border (top-to-bottom for a
    vertical border, left-to-right for a horizontal one); position ``j``
    of the two sides are the two pixels facing each other across the
    border line.
    """

    labels: np.ndarray
    colors: np.ndarray

    def __post_init__(self) -> None:
        self.labels = np.asarray(self.labels, dtype=np.int64)
        self.colors = np.asarray(self.colors, dtype=np.int64)
        if self.labels.shape != self.colors.shape or self.labels.ndim != 1:
            raise ValidationError("labels and colors must be equal-length vectors")

    def __len__(self) -> int:
        return len(self.labels)


@dataclass
class BorderSolve:
    """Result of one border merge: the change array plus graph statistics."""

    changes: ChangeArray
    n_vertices: int
    n_edges: int


def _within_side_edges(labels: np.ndarray, vertex_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Chain edges between consecutive same-label vertices (after sort)."""
    if len(labels) < 2:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    order = hybrid_argsort(labels)
    sorted_labels = labels[order]
    sorted_ids = vertex_ids[order]
    same = sorted_labels[1:] == sorted_labels[:-1]
    return sorted_ids[:-1][same], sorted_ids[1:][same]


def _cross_edges(
    left: BorderSide,
    right: BorderSide,
    left_ids: np.ndarray,
    right_ids: np.ndarray,
    connectivity: int,
    grey: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Edges between facing (and, under 8-conn, diagonal) border pixels."""
    L = len(left)
    if connectivity == 8:
        offsets = (-1, 0, 1)
    elif connectivity == 4:
        offsets = (0,)
    else:
        raise ValidationError(f"connectivity must be 4 or 8, got {connectivity}")
    us: list[np.ndarray] = []
    vs: list[np.ndarray] = []
    for d in offsets:
        if d >= 0:
            li = np.arange(0, L - d)
            ri = li + d
        else:
            ri = np.arange(0, L + d)
            li = ri - d
        ok = (left.colors[li] != 0) & (right.colors[ri] != 0)
        if grey:
            ok &= left.colors[li] == right.colors[ri]
        us.append(left_ids[li[ok]])
        vs.append(right_ids[ri[ok]])
    return np.concatenate(us), np.concatenate(vs)


def solve_border_merge(
    left: BorderSide,
    right: BorderSide,
    *,
    connectivity: int = 8,
    grey: bool = False,
) -> BorderSolve:
    """Solve one border merge; returns the sorted unique change array.

    ``left``/``right`` are the two facing sides (for a vertical merge
    read them as upper/lower).  Binary mode connects any two non-zero
    pixels; grey mode requires equal colors across the border (within a
    side, equal labels already imply equal colors).
    """
    if len(left) != len(right):
        raise ValidationError(
            f"border sides must have equal length, got {len(left)} and {len(right)}"
        )
    L = len(left)
    if L == 0:
        return BorderSolve(ChangeArray.empty(), 0, 0)

    # Vertex ids: left side 0..L-1, right side L..2L-1; only colored
    # pixels become real vertices (others keep no edges).
    all_labels = np.concatenate([left.labels, right.labels])
    all_colors = np.concatenate([left.colors, right.colors])
    ids = np.arange(2 * L, dtype=np.int64)

    left_mask = left.colors != 0
    right_mask = right.colors != 0
    u1a, v1a = _within_side_edges(left.labels[left_mask], ids[:L][left_mask])
    u1b, v1b = _within_side_edges(right.labels[right_mask], ids[L:][right_mask])
    u2, v2 = _cross_edges(left, right, ids[:L], ids[L:], connectivity, grey)

    u = np.concatenate([u1a, u1b, u2])
    v = np.concatenate([v1a, v1b, v2])

    uf = UnionFind(2 * L)
    uf.union_edges(u, v)
    roots = uf.roots()

    # Minimum label per component.
    min_label = np.full(2 * L, np.iinfo(np.int64).max, dtype=np.int64)
    colored = all_colors != 0
    np.minimum.at(min_label, roots[colored], all_labels[colored])
    new_labels = all_labels.copy()
    new_labels[colored] = min_label[roots[colored]]

    changes = create_change_array(all_labels[colored], new_labels[colored])
    n_vertices = int(colored.sum())
    return BorderSolve(changes=changes, n_vertices=n_vertices, n_edges=int(len(u)))

"""Tile hooks (Procedure 2 of the paper, Figure 5).

A *hook* records, for each component of a tile that touches the tile
border, the component's initial label and the flat offset of one of its
border pixels.  During the merge iterations only border pixels are
relabeled ("drastically limited updating"); when all merges are done,
each hook is consulted: if the label currently stored at the hook's
offset differs from the hook's recorded initial label, the whole
component must be renamed to the current label.

Procedure 2 builds the hooks by scanning the tile border, radix-sorting
the (label, offset) pairs by label and keeping one pair per unique
label.  The final renaming is Section 5.3's interior update: the paper
re-runs a BFS from each changed hook; because every pixel of a tile
component still carries the component's unique initial label, renaming
"all pixels whose label equals the hook's initial label" touches
exactly the same pixels, so :func:`apply_hooks` performs the update as
one vectorized mapping (a BFS-faithful reference mode is available for
testing).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.tiles import perimeter_indices
from repro.sorting.hybrid import hybrid_argsort
from repro.utils.errors import ValidationError


@dataclass
class TileHooks:
    """Sorted hook arrays of one tile.

    ``labels[i]`` is the initial label of the i-th border-touching
    component (strictly increasing); ``offsets[i]`` is the flat
    (row-major) tile offset of one border pixel of that component.
    """

    labels: np.ndarray
    offsets: np.ndarray

    def __len__(self) -> int:
        return len(self.labels)


def create_tile_hooks(tile_labels: np.ndarray) -> TileHooks:
    """Procedure 2: one ``(label, offset)`` hook per border component.

    Parameters
    ----------
    tile_labels:
        The tile's 2-D initial label array (0 = background).
    """
    tile_labels = np.asarray(tile_labels)
    if tile_labels.ndim != 2:
        raise ValidationError(f"tile_labels must be 2-D, got {tile_labels.shape}")
    q, r = tile_labels.shape
    border = perimeter_indices(q, r)
    flat = tile_labels.ravel()
    border_labels = flat[border]
    colored = border_labels != 0
    border = border[colored]
    border_labels = border_labels[colored]
    if border_labels.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return TileHooks(labels=empty, offsets=empty)
    order = hybrid_argsort(border_labels)
    sorted_labels = border_labels[order]
    sorted_offsets = border[order]
    keep = np.ones(len(sorted_labels), dtype=bool)
    keep[1:] = sorted_labels[1:] != sorted_labels[:-1]
    return TileHooks(
        labels=sorted_labels[keep].astype(np.int64),
        offsets=sorted_offsets[keep].astype(np.int64),
    )


def hook_ops(q: int, r: int) -> int:
    """Border pixel count of a ``q x r`` tile (for cost charging)."""
    if q <= 0 or r <= 0:
        return 0
    if q == 1:
        return r
    if r == 1:
        return q
    return 2 * (q + r) - 4


def apply_hooks(tile_labels: np.ndarray, hooks: TileHooks) -> np.ndarray:
    """Final interior update: rename components whose hooks changed.

    ``tile_labels`` holds the tile's labels after the last merge step
    (border pixels current, interior pixels still initial).  For each
    hook whose pixel now carries a different label, all pixels still
    holding the hook's initial label are renamed to the current one.
    Returns the updated 2-D label array.
    """
    tile_labels = np.asarray(tile_labels)
    if len(hooks) == 0:
        return tile_labels.copy()
    flat = tile_labels.ravel()
    current = flat[hooks.offsets]
    changed = current != hooks.labels
    if not changed.any():
        return tile_labels.copy()
    old = hooks.labels[changed]
    new = current[changed]
    out = flat.copy()
    pos = np.searchsorted(old, out)
    pos_clipped = np.minimum(pos, len(old) - 1)
    hit = old[pos_clipped] == out
    out[hit] = new[pos_clipped[hit]]
    return out.reshape(tile_labels.shape)


def apply_hooks_isolated(
    tile_labels: np.ndarray, hooks: TileHooks, border_labels: np.ndarray
) -> np.ndarray:
    """Final interior update of a tile processed in isolation.

    The out-of-core path (:mod:`repro.darray`'s ``mmap`` transport)
    spills a tile to disk right after initial labeling and keeps only
    its perimeter labels resident through the merge rounds.  The
    spilled tile therefore holds *initial* labels everywhere -- border
    included -- unlike the all-resident path, where the merge rounds
    have already written the current labels onto the border.

    ``border_labels`` holds the tile's post-merge perimeter labels in
    :func:`~repro.core.tiles.perimeter_indices` order.  Writing them
    back restores exactly the state :func:`apply_hooks` expects, so the
    two paths produce identical tiles (tested).
    """
    tile_labels = np.asarray(tile_labels)
    if tile_labels.ndim != 2:
        raise ValidationError(f"tile_labels must be 2-D, got {tile_labels.shape}")
    q, r = tile_labels.shape
    border = perimeter_indices(q, r)
    border_labels = np.asarray(border_labels, dtype=tile_labels.dtype)
    if border_labels.shape != border.shape:
        raise ValidationError(
            f"border_labels has {border_labels.size} entries, expected "
            f"{border.size} for a {q}x{r} tile"
        )
    flat = tile_labels.ravel().copy()
    flat[border] = border_labels
    return apply_hooks(flat.reshape(q, r), hooks)


def apply_hooks_bfs(tile_labels: np.ndarray, hooks: TileHooks, *, connectivity: int = 8) -> np.ndarray:
    """Paper-faithful interior update: BFS relabel from each changed hook.

    Reference implementation of Section 5.3's final step; produces the
    same result as :func:`apply_hooks` (tested), at pure-Python speed.
    """
    from collections import deque

    tile_labels = np.asarray(tile_labels)
    q, r = tile_labels.shape
    out = tile_labels.copy()
    if connectivity == 8:
        nbrs = ((-1, -1), (-1, 0), (-1, 1), (0, -1), (0, 1), (1, -1), (1, 0), (1, 1))
    elif connectivity == 4:
        nbrs = ((-1, 0), (0, -1), (0, 1), (1, 0))
    else:
        raise ValidationError(f"connectivity must be 4 or 8, got {connectivity}")
    for initial, offset in zip(hooks.labels.tolist(), hooks.offsets.tolist()):
        new = int(out.ravel()[offset])
        if new == initial:
            continue
        # BFS over pixels still holding the initial label.  The hook
        # pixel itself was already renamed (it is a border pixel), so
        # start from its neighbors.
        si, sj = divmod(offset, r)
        queue = deque([(si, sj)])
        while queue:
            ci, cj = queue.popleft()
            for di, dj in nbrs:
                ni, nj = ci + di, cj + dj
                if 0 <= ni < q and 0 <= nj < r and out[ni, nj] == initial:
                    out[ni, nj] = new
                    queue.append((ni, nj))
        # Disconnected remnants cannot exist: all pixels labeled
        # `initial` form one tile component by construction, but border
        # pixels along the way may already carry `new`, splitting the
        # BFS frontier; sweep any stragglers.
        remaining = out == initial
        if remaining.any():
            out[remaining] = new
    return out

"""Parallel connected components on the BDM machine (Sections 5 and 6).

The algorithm in three acts:

1. **Initial labeling** -- every processor runs a sequential CC pass
   over its own tile, labeling each tile component with the globally
   unique label ``(I q + i) n + (J r + j) + 1`` of its first pixel in
   row-major order (no communication needed for uniqueness), and builds
   its *tile hooks* (one ``(label, border-offset)`` pair per component
   touching the tile border).

2. **log p merge iterations** -- alternating horizontal and vertical
   border merges per :func:`~repro.core.merge.merge_schedule`.  Per
   border, the group manager and shadow manager fetch and sort the two
   border sides; the manager solves the border graph
   (:func:`~repro.core.border_graph.solve_border_merge`) and publishes
   the sorted change array; every processor of the merged region then
   relabels -- and this is the paper's key idea -- *only its tile
   border pixels*, by binary search of the change list ("drastically
   limited updating").

3. **Final consistency update** -- after the last merge each processor
   compares every hook's recorded initial label with the current label
   at the hook's border offset and renames the affected components'
   interior pixels once.

Grey-scale images (Section 6) use the same machinery: the per-tile
labeling joins only equal levels and the border graph adds cross edges
only between equal-colored pixels.

Complexities (equations (11)/(12)): ``T_comp = O(n^2/p)``,
``T_comm <= (4 log p) tau + O(n^2/p)`` for ``p <= n``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.baselines.sequential import ENGINES
from repro.bdm.cost import MachineReport
from repro.bdm.machine import Machine
from repro.bdm.memory import GlobalArray
from repro.core.border_graph import BorderSide, solve_border_merge
from repro.core.change_array import ChangeArray, apply_changes
from repro.core.costs import CostParams, DEFAULT_COSTS
from repro.core.hooks import TileHooks, apply_hooks, create_tile_hooks, hook_ops
from repro.core.merge import MergeStep, merge_schedule
from repro.core.tiles import ProcessorGrid, edge_indices, perimeter_indices
from repro.faults.plan import FaultPlan
from repro.kernels import get as get_kernel, resolve_backend
from repro.machines.params import MachineParams, IDEAL
from repro.obs.events import (
    FAULT_FAILOVER,
    FAULT_MANAGER_CRASH,
    FAULT_SHADOW_CRASH,
)
from repro.sorting.hybrid import hybrid_sort_ops
from repro.utils.errors import FailoverError, ValidationError
from repro.utils.validation import check_image


@dataclass
class MergeStepStats:
    """Diagnostics of one merge iteration."""

    t: int
    orientation: str
    n_groups: int
    border_pixels_per_side: int
    n_vertices: int
    n_edges: int
    n_changes: int
    n_failovers: int = 0


@dataclass
class ComponentsResult:
    """Output of :func:`parallel_components`.

    ``labels`` is the assembled ``n x n`` label image: background 0,
    every component labeled with ``1 +`` the row-major index of its
    first pixel (identical to the sequential engines' convention).
    """

    labels: np.ndarray
    report: MachineReport
    grid: ProcessorGrid
    n_components: int
    step_stats: list[MergeStepStats] = field(default_factory=list)

    @property
    def elapsed_s(self) -> float:
        return self.report.elapsed_s


def parallel_components(
    image: np.ndarray,
    p: int,
    machine_params: MachineParams = IDEAL,
    *,
    connectivity: int = 8,
    grey: bool = False,
    engine: str = "runs",
    costs: CostParams = DEFAULT_COSTS,
    shadow_manager: bool = True,
    distribution: str = "direct",
    limited_updating: bool = True,
    check_hazards: bool = True,
    overlap: bool = False,
    machine: Machine | None = None,
    kernel: str | None = None,
    fault_plan: FaultPlan | None = None,
) -> ComponentsResult:
    """Label the connected components of an ``n x n`` image on ``p`` processors.

    Parameters
    ----------
    image:
        Integer image; 0 is background.  Binary mode (default) connects
        all non-zero pixels; ``grey=True`` connects equal levels only.
    p:
        Processor count, a power of two with ``p <= n^2`` and the grid
        dividing ``n`` (see :class:`~repro.core.tiles.ProcessorGrid`).
    machine_params:
        Platform cost model for the simulated run.
    connectivity:
        4 or 8 (the paper's two adjacency notions).
    engine:
        Sequential per-tile labeling engine: ``"runs"`` (fast,
        default), ``"bfs"`` (paper-faithful reference), ``"sv"``,
        ``"twopass"``, or ``"kernel"`` (the :mod:`repro.kernels`
        registry; its backend follows the ``kernel`` argument).
    shadow_manager:
        If True (paper's optimization) the processor across the border
        fetches and sorts its side in parallel with the manager;
        if False the manager does both sides itself.
    distribution:
        ``"direct"``: every client fetches the change list straight
        from its manager (equation (8)).  ``"transpose"``: the
        two-round transpose-based distribution of equation (9)/(10).
    limited_updating:
        If True (the paper's algorithm) only tile border pixels are
        relabeled during merges, interiors once at the end via hooks;
        if False every tile pixel is relabeled in every iteration (the
        naive scheme; ablation baseline).
    check_hazards:
        Enable the simulator's same-phase hazard checker.
    overlap:
        Model perfect split-phase overlap of communication and
        computation (see :class:`~repro.bdm.machine.Machine`).
    machine:
        Optional pre-built :class:`Machine` (e.g. with a
        :class:`~repro.bdm.trace.Tracer` attached); must have ``p``
        processors.  When given, the other machine options are ignored.
    kernel:
        Kernel backend (``"python"`` / ``"numpy"``) for the local
        steps dispatched through :mod:`repro.kernels` -- the change-array
        relabel of the update phases, and the tile labeling when
        ``engine="kernel"``.  ``None`` resolves ``REPRO_KERNEL_BACKEND``
        / the numpy default.  The backend changes only how local
        computation runs, never the simulated costs.
    fault_plan:
        Optional :class:`~repro.faults.plan.FaultPlan`.  The simulator
        honors ``sim:merge`` specs: a processor loss at a merge-round
        boundary.  Losing a group's *manager* triggers the paper's
        natural redundancy -- the shadow manager already holds one
        sorted border side, so it fetches the other, solves the border
        graph, and publishes the change list itself (bit-identical
        labels, one failover instant on the simulated timeline).
        Losing the *shadow* makes the manager fetch both sides, as if
        ``shadow_manager=False`` for that group.  Losing both (or the
        manager with ``shadow_manager=False``) is unrecoverable and
        raises :class:`~repro.utils.errors.FailoverError`.  Specs at
        other sites target the process runtime and are ignored here.
    """
    image = check_image(image, square=False)
    if distribution not in ("direct", "transpose"):
        raise ValidationError(f"unknown distribution {distribution!r}")
    if engine not in ENGINES:
        raise ValidationError(f"unknown engine {engine!r}; known: {sorted(ENGINES)}")
    kernel = resolve_backend(kernel)
    if engine == "kernel":
        label_fn = partial(ENGINES["kernel"], backend=kernel)
    else:
        label_fn = ENGINES[engine]
    relabel_kernel = get_kernel("relabel", backend=kernel)

    grid = ProcessorGrid(p, image.shape)
    stride = grid.cols
    q, r = grid.q, grid.r
    if machine is None:
        machine = Machine(p, machine_params, check_hazards=check_hazards, overlap=overlap)
    elif machine.p != p:
        raise ValidationError(f"machine has {machine.p} processors, expected {p}")
    # Tile placement through the DistributedArray facade (the darray
    # subsystem's in-process transport); imported lazily because
    # repro.core's package init loads this module.
    from repro.darray.array import DistributedArray

    darr = DistributedArray.place(image, grid)

    colors = GlobalArray(machine, q * r, dtype=np.int64, name="colors")
    labels = GlobalArray(machine, q * r, dtype=np.int64, name="labels")
    for pid in range(p):
        colors.place(pid, darr.tile(pid))  # initial placement, free

    # ---- 1. initial per-tile labeling -----------------------------------
    tile_pixels = q * r
    with machine.phase("cc:label"):
        for proc in machine.procs:
            I, J = grid.coords(proc.pid)
            lab = label_fn(
                darr.tile(proc.pid),
                connectivity=connectivity,
                grey=grey,
                label_base=1,
                label_stride=stride,
                row_offset=I * q,
                col_offset=J * r,
            )
            labels.write(proc, proc.pid, lab.ravel())
            proc.charge_comp(costs.label_per_pixel(grey) * tile_pixels)

    hooks: list[TileHooks] = []
    if limited_updating:
        with machine.phase("cc:hooks"):
            for proc in machine.procs:
                lab2d = labels.local(proc.pid).reshape(q, r)
                hooks.append(create_tile_hooks(lab2d))
                bp = hook_ops(q, r)
                proc.charge_comp(costs.hooks_per_border_pixel * bp + hybrid_sort_ops(bp))

    border_idx = perimeter_indices(q, r)
    edge_cache = {name: edge_indices(q, r, name) for name in ("top", "bottom", "left", "right")}

    # ---- 2. merge iterations ---------------------------------------------
    step_stats: list[MergeStepStats] = []
    for step in merge_schedule(grid):
        stats = _run_merge_step(
            machine,
            step,
            labels,
            colors,
            edge_cache,
            border_idx,
            connectivity=connectivity,
            grey=grey,
            costs=costs,
            shadow_manager=shadow_manager,
            distribution=distribution,
            limited_updating=limited_updating,
            tile_pixels=tile_pixels,
            relabel_kernel=relabel_kernel,
            fault_plan=fault_plan,
        )
        step_stats.append(stats)

    # ---- 3. final interior update ----------------------------------------
    if limited_updating:
        with machine.phase("cc:final"):
            for proc in machine.procs:
                lab2d = labels.local(proc.pid).reshape(q, r)
                final = apply_hooks(lab2d, hooks[proc.pid])
                labels.write(proc, proc.pid, final.ravel())
                proc.charge_comp(costs.relabel_per_pixel * tile_pixels)

    full = grid.gather([labels.local(pid).reshape(q, r) for pid in range(p)], dtype=np.int64)
    n_components = int(np.unique(full[full != 0]).size)
    return ComponentsResult(
        labels=full,
        report=machine.report(),
        grid=grid,
        n_components=n_components,
        step_stats=step_stats,
    )


def _fetch_side(machine, proc, pids, edge_idx, labels, colors):
    """Fetch one border side's labels and colors (pipelined prefetch)."""
    lab_parts = []
    col_parts = []
    with proc.prefetch_batch():
        for pid in pids:
            lab_parts.append(labels.read_indices(proc, pid, edge_idx))
            col_parts.append(colors.read_indices(proc, pid, edge_idx))
    return BorderSide(np.concatenate(lab_parts), np.concatenate(col_parts))


def _run_merge_step(
    machine: Machine,
    step: MergeStep,
    labels: GlobalArray,
    colors: GlobalArray,
    edge_cache: dict,
    border_idx: np.ndarray,
    *,
    connectivity: int,
    grey: bool,
    costs: CostParams,
    shadow_manager: bool,
    distribution: str,
    limited_updating: bool,
    tile_pixels: int,
    relabel_kernel=None,
    fault_plan: FaultPlan | None = None,
) -> MergeStepStats:
    """Execute one merge iteration (fetch/sort, solve, distribute+update).

    Per group the protocol runs three roles: the side-A fetcher, the
    side-B fetcher, and the *publisher* (solves the border graph and
    serves the change list).  Normally the manager holds A + publish
    and the shadow holds B; a ``sim:merge`` fault reassigns roles at
    the round boundary -- manager lost, the shadow takes all three
    (failover); shadow lost, the manager does.  The faulted processor's
    tile memory stays served (single global address space), and it
    rejoins as an ordinary update-phase client, so labels stay
    bit-identical to the unfaulted run.
    """
    t = step.t
    edge_a, edge_b = step.edge_names
    idx_a = edge_cache[edge_a]
    idx_b = edge_cache[edge_b]
    side_len = len(idx_a) * len(step.groups[0].side_a_pids)

    # -- role assignment (applies any merge-round-boundary faults) -------
    n_failovers = 0
    roles: dict[int, tuple[int, int, int]] = {}  # manager -> (fetch_a, fetch_b, publisher)
    for gi, group in enumerate(step.groups):
        fetch_a = publisher = group.manager
        fetch_b = group.shadow if shadow_manager else group.manager
        lost: set[str] = set()
        if fault_plan is not None:
            for spec in fault_plan.match_all("sim:merge", round=t - 1, group=gi):
                lost |= {"manager", "shadow"} if spec.target == "both" else {spec.target}
        if "manager" in lost:
            machine.note_instant(
                FAULT_MANAGER_CRASH, lane=group.manager, round=t - 1, group=gi
            )
            if "shadow" in lost or not shadow_manager:
                detail = (
                    f"shadow P{group.shadow} lost too"
                    if "shadow" in lost
                    else "no shadow manager to fail over to"
                )
                raise FailoverError(
                    f"merge round {t - 1} group {gi}: manager P{group.manager} "
                    f"lost and {detail}",
                    site="sim:merge",
                )
            machine.note_instant(
                FAULT_FAILOVER,
                lane=group.shadow,
                round=t - 1,
                group=gi,
                manager=group.manager,
                shadow=group.shadow,
            )
            fetch_a = fetch_b = publisher = group.shadow
            n_failovers += 1
        elif "shadow" in lost and shadow_manager:
            machine.note_instant(
                FAULT_SHADOW_CRASH, lane=group.shadow, round=t - 1, group=gi
            )
            fetch_b = group.manager
            n_failovers += 1
        roles[group.manager] = (fetch_a, fetch_b, publisher)

    sides_a: dict[int, BorderSide] = {}
    sides_b: dict[int, BorderSide] = {}
    with machine.phase(f"cc:m{t}:fetch"):
        for group in step.groups:
            fetch_a, fetch_b, _ = roles[group.manager]
            pa = machine.procs[fetch_a]
            sides_a[group.manager] = _fetch_side(
                machine, pa, group.side_a_pids, idx_a, labels, colors
            )
            pa.charge_comp(hybrid_sort_ops(side_len))
            pb = machine.procs[fetch_b]
            sides_b[group.manager] = _fetch_side(
                machine, pb, group.side_b_pids, idx_b, labels, colors
            )
            pb.charge_comp(hybrid_sort_ops(side_len))

    changes: dict[int, ChangeArray] = {}
    n_vertices = n_edges = n_changes = 0
    with machine.phase(f"cc:m{t}:solve"):
        for group in step.groups:
            _, fetch_b, publisher = roles[group.manager]
            pub = machine.procs[publisher]
            if fetch_b != publisher:
                # Publisher prefetches the other fetcher's sorted side
                # (labels + colors); that fetcher reverts to a client.
                machine.transfer(fetch_b, publisher, 2 * side_len)
            solve = solve_border_merge(
                sides_a[group.manager],
                sides_b[group.manager],
                connectivity=connectivity,
                grey=grey,
            )
            changes[group.manager] = solve.changes
            pub.charge_comp(
                costs.graph_build_per_vertex * solve.n_vertices
                + costs.graph_cc_per_vertex * solve.n_vertices
                + costs.change_per_entry * len(solve.changes)
                + hybrid_sort_ops(len(solve.changes))
            )
            n_vertices += solve.n_vertices
            n_edges += solve.n_edges
            n_changes += len(solve.changes)

    if distribution == "transpose":
        _distribute_transpose(machine, step, changes, roles)

    with machine.phase(f"cc:m{t}:update"):
        for group in step.groups:
            publisher = roles[group.manager][2]
            ch = changes[group.manager]
            ch_words = 1 + 2 * len(ch)
            for pid in group.region:
                proc = machine.procs[pid]
                if distribution == "direct" and pid != publisher:
                    # Client prefetches chSize, then the change pairs,
                    # straight from the publisher (equation (8)).
                    machine.transfer(publisher, pid, ch_words)
                _update_tile(
                    proc, pid, labels, border_idx, ch,
                    costs=costs,
                    limited_updating=limited_updating,
                    tile_pixels=tile_pixels,
                    relabel_kernel=relabel_kernel,
                )

    return MergeStepStats(
        t=t,
        orientation=step.orientation,
        n_groups=len(step.groups),
        border_pixels_per_side=side_len,
        n_vertices=n_vertices,
        n_edges=n_edges,
        n_changes=n_changes,
        n_failovers=n_failovers,
    )


def _update_tile(
    proc, pid, labels, border_idx, ch, *,
    costs, limited_updating, tile_pixels, relabel_kernel=None,
):
    """Relabel a processor's pixels against a change array.

    The binary-search relabel itself is a kernel-dispatched local step;
    the default (``relabel_kernel=None``) is the vectorized
    :func:`~repro.core.change_array.apply_changes` equivalent.
    """
    if len(ch) == 0:
        return
    if relabel_kernel is None:
        relabel = partial(apply_changes, changes=ch)
    else:
        relabel = partial(relabel_kernel, alphas=ch.alphas, betas=ch.betas)
    if limited_updating:
        cur = labels.read_indices(proc, pid, border_idx)
        labels.write_indices(proc, pid, border_idx, relabel(cur))
        proc.charge_comp(costs.binary_search_ops(len(border_idx), len(ch)))
    else:
        cur = labels.read(proc, pid)
        labels.write(proc, pid, relabel(cur))
        proc.charge_comp(costs.binary_search_ops(tile_pixels, len(ch)))


def _distribute_transpose(
    machine: Machine,
    step: MergeStep,
    changes: dict[int, ChangeArray],
    roles: dict[int, tuple[int, int, int]],
) -> None:
    """Equation (9)/(10): two-round change-list distribution.

    Round 1: the publisher (the manager, or the shadow after a
    failover) hands each of the ``f`` region processors one
    ``ceil(c/f)``-word slice of the serialized change list.  Round 2:
    the processors exchange slices circularly, so everyone assembles
    the full list at cost ``2 (tau + c - c/f)`` instead of the direct
    scheme's ``f``-fold serialization at the publisher.
    The reassembled list replaces the publisher-held one in ``changes``
    consumption order, keeping the data path honest.
    """
    t = step.t
    # Per-processor slice lengths for this step's groups.
    lengths = [0] * machine.p
    group_meta = {}
    for group in step.groups:
        region = group.region
        f = len(region)
        ch = changes[group.manager]
        words = ch.to_words()
        c = len(words)
        slice_len = -(-max(c, 1) // f)  # ceil; >=1 so blocks are addressable
        padded = np.zeros(slice_len * f, dtype=np.int64)
        padded[:c] = words
        group_meta[group.manager] = (region, f, slice_len, padded, len(ch))
        for pid in region:
            lengths[pid] = slice_len
    slices = GlobalArray(machine, lengths, dtype=np.int64, name=f"chslices:m{t}")

    with machine.phase(f"cc:m{t}:dist1"):
        for group in step.groups:
            region, f, slice_len, padded, _ = group_meta[group.manager]
            publisher = roles[group.manager][2]
            for rank, pid in enumerate(region):
                proc = machine.procs[pid]
                if pid != publisher:
                    machine.transfer(publisher, pid, slice_len + 1)
                slices.write(proc, pid, padded[rank * slice_len : (rank + 1) * slice_len])

    with machine.phase(f"cc:m{t}:dist2"):
        for group in step.groups:
            region, f, slice_len, _, n_ch = group_meta[group.manager]
            region_list = list(region)
            for my_rank, pid in enumerate(region_list):
                proc = machine.procs[pid]
                parts = [None] * f
                with proc.prefetch_batch():
                    for hop in range(f):
                        rank = (my_rank + hop) % f
                        parts[rank] = slices.read(proc, region_list[rank])
                words = np.concatenate(parts)[: 2 * n_ch]
                if pid == group.manager:
                    # Everyone reassembles identically; adopt one copy so
                    # the update phase consumes shipped (not workspace) data.
                    changes[group.manager] = ChangeArray.from_words(words)

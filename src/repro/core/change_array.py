"""Change arrays (Procedure 1 of the paper).

After a group manager solves a border graph it knows, for some labels
``alpha``, a new label ``beta``.  Procedure 1 turns the raw ``(alpha,
beta)`` pairs into a *sorted array of unique change pairs*: copy the
changed pairs into a contiguous array, radix sort by ``alpha``, and
scan out duplicates.  Clients later binary-search this array to update
their border pixels.

The array structure "is actually two contiguous arrays, one holding the
obsolete labels (alphas) and the other the corresponding new labels
(betas)" -- mirrored by :class:`ChangeArray`'s two parallel vectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sorting.hybrid import hybrid_argsort
from repro.utils.errors import ValidationError


@dataclass
class ChangeArray:
    """Sorted unique label changes: ``alphas[i] -> betas[i]``."""

    alphas: np.ndarray
    betas: np.ndarray

    def __post_init__(self) -> None:
        self.alphas = np.asarray(self.alphas, dtype=np.int64)
        self.betas = np.asarray(self.betas, dtype=np.int64)
        if self.alphas.shape != self.betas.shape or self.alphas.ndim != 1:
            raise ValidationError("alphas and betas must be equal-length vectors")

    def __len__(self) -> int:
        return len(self.alphas)

    @staticmethod
    def empty() -> "ChangeArray":
        z = np.empty(0, dtype=np.int64)
        return ChangeArray(z, z)

    def to_words(self) -> np.ndarray:
        """Serialize as ``[alphas | betas]`` for shipping over the network."""
        return np.concatenate([self.alphas, self.betas])

    @staticmethod
    def from_words(words: np.ndarray) -> "ChangeArray":
        words = np.asarray(words, dtype=np.int64)
        if len(words) % 2 != 0:
            raise ValidationError("serialized change array must have even length")
        half = len(words) // 2
        return ChangeArray(words[:half], words[half:])


def create_change_array(old_labels: np.ndarray, new_labels: np.ndarray) -> ChangeArray:
    """Procedure 1: sorted unique ``(alpha, beta)`` pairs where labels changed.

    Parameters
    ----------
    old_labels, new_labels:
        Parallel arrays of per-vertex labels before/after the border
        graph solve.  Pairs with ``old == new`` are dropped (Step 1),
        the rest are sorted by ``alpha`` (Step 2) and deduplicated
        (Step 3).
    """
    old_labels = np.asarray(old_labels, dtype=np.int64)
    new_labels = np.asarray(new_labels, dtype=np.int64)
    if old_labels.shape != new_labels.shape:
        raise ValidationError("old/new label arrays must have equal shape")
    changed = old_labels != new_labels
    alphas = old_labels[changed]
    betas = new_labels[changed]
    if alphas.size == 0:
        return ChangeArray.empty()
    order = hybrid_argsort(alphas)
    alphas = alphas[order]
    betas = betas[order]
    keep = np.ones(len(alphas), dtype=bool)
    keep[1:] = alphas[1:] != alphas[:-1]
    alphas = alphas[keep]
    betas = betas[keep]
    # Consistency: a label must map to a single new label.  Procedure 1
    # assumes the solver produced consistent pairs; verify cheaply when
    # duplicates were dropped.
    if len(alphas) != int(changed.sum()):
        all_alphas = old_labels[changed][order]
        all_betas = new_labels[changed][order]
        same_alpha = all_alphas[1:] == all_alphas[:-1]
        if (same_alpha & (all_betas[1:] != all_betas[:-1])).any():
            raise ValidationError("inconsistent change pairs: one alpha, two betas")
    return ChangeArray(alphas, betas)


def apply_changes(labels: np.ndarray, changes: ChangeArray) -> np.ndarray:
    """Relabel via binary search of the change array (vectorized).

    Each input label is looked up in ``changes.alphas``; hits are
    replaced with the corresponding beta, misses pass through -- the
    vectorized equivalent of the per-pixel binary search the paper
    performs on border pixels.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if len(changes) == 0:
        return labels.copy()
    pos = np.searchsorted(changes.alphas, labels)
    pos_clipped = np.minimum(pos, len(changes) - 1)
    hit = changes.alphas[pos_clipped] == labels
    out = labels.copy()
    out[hit] = changes.betas[pos_clipped[hit]]
    return out

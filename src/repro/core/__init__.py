"""The paper's primary contribution: parallel histogramming and
connected components on the Block Distributed Memory model.

Public entry points:

* :func:`~repro.core.histogram.parallel_histogram` -- Section 4.
* :func:`~repro.core.connected_components.parallel_components` --
  Sections 5 (binary) and 6 (grey-scale; pass ``grey=True``).
* :class:`~repro.core.tiles.ProcessorGrid` -- the logical ``v x w``
  processor grid and tile decomposition of Section 3.
"""

from repro.core.tiles import ProcessorGrid
from repro.core.costs import CostParams, DEFAULT_COSTS
from repro.core.histogram import parallel_histogram, HistogramResult
from repro.core.connected_components import parallel_components, ComponentsResult
from repro.core.merge import merge_schedule, MergeStep, MergeGroup
from repro.core.equalization import parallel_equalize, EqualizationResult, equalization_lut
from repro.core.spmd_programs import spmd_transpose, spmd_broadcast, spmd_histogram

__all__ = [
    "ProcessorGrid",
    "CostParams",
    "DEFAULT_COSTS",
    "parallel_histogram",
    "HistogramResult",
    "parallel_components",
    "ComponentsResult",
    "merge_schedule",
    "MergeStep",
    "MergeGroup",
    "parallel_equalize",
    "EqualizationResult",
    "equalization_lut",
    "spmd_transpose",
    "spmd_broadcast",
    "spmd_histogram",
]

"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``    write one of the Figure-1 test patterns (or the
                DARPA-like scene) as a PBM/PGM file.
``histogram``   histogram a PGM/PBM image with the parallel algorithm
                on a simulated machine; optionally equalize.
``components``  label connected components; print statistics, optionally
                write the label map / an ASCII rendering.
``machines``    list the available machine models.
``check``       run the static-analysis engine over the repo: SPMD
                split-phase lint plus the ASYNC/RES/ERR/COST rule
                families, with ``--select``/``--ignore``, JSON/SARIF
                output, a findings baseline, and an optional dynamic
                smoke-run under the shadow-memory race detector.
``trace``       run a workload under the observability layer and export
                a Chrome trace-event JSON (open in Perfetto /
                ``chrome://tracing``) plus a metrics snapshot, on either
                the simulated machine or the real multiprocessing
                runtime; ``--follow TRACE_ID`` instead prints one
                request's cross-process span tree from a live server's
                ``trace`` control op or an exported trace file.
``chaos``       run the seeded single-fault chaos matrix against a
                workload and report each plan's recovery outcome
                (``histogram``/``components`` also accept a
                ``--fault-plan`` JSON for one specific plan).
``serve``       run the async batch-serving layer on a unix socket:
                micro-batched dispatch onto a shared worker pool,
                content-addressed result caching, bounded queues with
                load shedding, per-request tracing (``--trace-out``),
                and a Prometheus-style metrics plane
                (``--metrics-interval`` writes a JSON time series;
                ``--selftest`` runs an in-process round-trip and exits).
``top``         live terminal dashboard over a running server: request
                rates, queue depth, cache hit-rate, and per-op
                p50/p95/p99 latency, refreshed from the ``stats`` and
                ``metrics`` control ops.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from repro.analysis.regions import region_table
from repro.core.connected_components import parallel_components
from repro.core.equalization import parallel_equalize
from repro.core.histogram import parallel_histogram
from repro.images import binary_test_image, darpa_like
from repro.images.io import read_pnm, write_pbm, write_pgm
from repro.machines import MACHINES, load_machine
from repro.runtime import components as runtime_components
from repro.utils.errors import ReproError
from repro.utils.render import ascii_labels


def _package_version() -> str:
    """The installed distribution's version, else the in-tree fallback."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        from repro import __version__

        return __version__


def _load_image(args) -> np.ndarray:
    if args.pattern is not None:
        if args.pattern == 0:
            return darpa_like(args.size, 256)
        return binary_test_image(args.pattern, args.size)
    if not args.image:
        raise ReproError("provide an image file or --pattern")
    return read_pnm(args.image)


def _add_input_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("image", nargs="?", help="PGM/PBM input file")
    sub.add_argument(
        "--pattern",
        type=int,
        choices=range(0, 10),
        help="generate input: 1-9 = Figure 1 test images, 0 = DARPA-like scene",
    )
    sub.add_argument("--size", type=int, default=512, help="pattern size (default 512)")
    sub.add_argument("-p", "--processors", type=int, default=16)
    sub.add_argument(
        "--machine",
        default="cm5",
        help=f"machine model ({', '.join(sorted(MACHINES))}) or a JSON spec file",
    )
    sub.add_argument(
        "--report", action="store_true", help="print the per-phase cost breakdown"
    )
    sub.add_argument(
        "--kernel",
        choices=("python", "numpy", "numba"),
        default=None,
        help="local-step kernel backend (default: $REPRO_KERNEL_BACKEND or numpy); "
        "python = per-pixel reference, numpy = vectorized (bit-identical), "
        "numba = JIT-compiled (requires the optional numba package)",
    )
    sub.add_argument(
        "--trace-out",
        metavar="OUT.json",
        help="write a Chrome trace-event JSON of the run (Perfetto-loadable)",
    )
    sub.add_argument(
        "--metrics-out",
        metavar="OUT.json",
        help="write a metrics snapshot (per-phase counters/gauges) as JSON",
    )


def _add_darray_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--engine",
        choices=("sim", "runtime", "darray"),
        default="sim",
        help="execution engine: sim = BDM cost simulator (default), "
        "runtime = hardened multiprocessing backend (same as --runtime), "
        "darray = DistributedArray over a pluggable transport",
    )
    sub.add_argument(
        "--transport",
        choices=("local", "shmem", "mmap"),
        default="local",
        help="darray tile placement: local = in-process, shmem = "
        "shared-memory shards on a supervised pool, mmap = out-of-core "
        "spill files over a memory-mapped PGM (--engine darray only)",
    )
    sub.add_argument(
        "--resident-tiles",
        type=int,
        default=1,
        metavar="N",
        help="out-of-core working-set budget: max label tiles resident "
        "at once (mmap transport, default 1)",
    )
    sub.add_argument(
        "--spill-dir",
        metavar="DIR",
        help="out-of-core spill directory (mmap transport; default: a "
        "private temp dir removed on exit)",
    )


def _resolve_engine(args) -> str:
    """The selected engine, honoring the legacy ``--runtime`` flag."""
    if args.runtime:
        return "runtime"
    return args.engine


def _darray_source(args):
    """Image source for the darray engine.

    A file path is handed through untouched so the ``mmap`` transport
    can map it instead of reading it; generated patterns come back as
    arrays (``mmap`` stages them to its spill directory).
    """
    if args.pattern is None and args.image:
        return args.image
    return _load_image(args)


def _print_darray_stats(stats) -> None:
    print(
        f"darray stats: border {stats.border_bytes} B, "
        f"changes {stats.change_bytes} B, "
        f"spills {stats.spill_reads}r/{stats.spill_writes}w, "
        f"resident highwater {stats.resident_highwater}"
    )


def cmd_generate(args) -> int:
    if args.pattern == 0:
        img = darpa_like(args.size, 256)
        write_pgm(args.output, img)
    else:
        img = binary_test_image(args.pattern, args.size)
        if args.output.endswith(".pgm"):
            write_pgm(args.output, img)
        else:
            write_pbm(args.output, img)
    print(f"wrote {args.output} ({args.size}x{args.size})")
    return 0


def _sim_recorder(args, params, *, force: bool = False):
    """Machine + attached recorder when trace/metrics output is requested.

    ``force=True`` builds them regardless (used when a fault plan is
    active, so recovery events can be reported even without exports).
    """
    wanted = getattr(args, "trace_out", None) or getattr(args, "metrics_out", None)
    if not (wanted or force):
        return None, None
    from repro.bdm.machine import Machine
    from repro.obs import MachineRecorder

    machine = Machine(args.processors, params)
    return machine, MachineRecorder(machine)


def _load_fault_plan(args):
    """Load and announce the ``--fault-plan`` JSON, if given."""
    path = getattr(args, "fault_plan", None)
    if not path:
        return None
    from repro.faults import FaultPlan

    plan = FaultPlan.load(path)
    print(f"fault plan: {plan.describe()} (seed {plan.seed})")
    return plan


def _print_fault_events(rec) -> None:
    """Summarize recorded ``fault:*`` instants (wall or sim recorder)."""
    if rec is None:
        return
    events = rec.fault_events()
    if events:
        print(f"fault events: {', '.join(i.name for i in events)}")
    else:
        print("fault events: none")


def _export_sim(args, rec) -> None:
    if rec is None:
        return
    from repro.obs import sim_metrics, write_chrome_trace, write_metrics

    if args.trace_out:
        write_chrome_trace(args.trace_out, rec.log)
        print(
            f"trace written to {args.trace_out} "
            f"({len(rec.log.spans)} spans; open in Perfetto)"
        )
    if args.metrics_out:
        write_metrics(args.metrics_out, sim_metrics(rec))
        print(f"metrics written to {args.metrics_out}")


def _export_wall(args, rec) -> None:
    if rec is None:
        return
    from repro.obs import wall_metrics, write_chrome_trace, write_metrics

    if args.trace_out:
        write_chrome_trace(args.trace_out, rec.log)
        print(
            f"trace written to {args.trace_out} "
            f"({len(rec.log.spans)} spans; open in Perfetto)"
        )
    if args.metrics_out:
        write_metrics(
            args.metrics_out, wall_metrics(rec.log, workers=len(rec.worker_lanes))
        )
        print(f"metrics written to {args.metrics_out}")


def _wall_recorder(args, plan):
    if args.trace_out or args.metrics_out or plan is not None:
        from repro.obs import WallRecorder

        return WallRecorder()
    return None


def _histogram_darray(args, plan) -> np.ndarray:
    from repro.darray import darray_histogram

    rec = _wall_recorder(args, plan)
    hist = darray_histogram(
        _darray_source(args),
        args.levels,
        p=args.processors,
        transport=args.transport,
        kernel=args.kernel,
        recorder=rec,
        fault_plan=plan,
        spill_dir=args.spill_dir,
        resident_tiles=args.resident_tiles,
    )
    print(
        f"histogram k={args.levels} via darray/{args.transport}, "
        f"p={args.processors}"
    )
    if plan is not None:
        _print_fault_events(rec)
    _export_wall(args, rec)
    return hist


def cmd_histogram(args) -> int:
    engine = _resolve_engine(args)
    params = load_machine(args.machine)
    plan = _load_fault_plan(args)
    if engine == "darray":
        hist = _histogram_darray(args, plan)
        image = None
    elif engine == "runtime":
        image = _load_image(args)
        from repro.obs import WallRecorder
        from repro.runtime import histogram as rt_histogram, resolve_workers

        rec = None
        if args.trace_out or args.metrics_out or plan is not None:
            rec = WallRecorder()
        hist = rt_histogram(
            image,
            args.levels,
            workers=resolve_workers(args.processors),
            backend="process",
            kernel=args.kernel,
            recorder=rec,
            fault_plan=plan,
        )
        print(
            f"histogram of {image.shape[0]}x{image.shape[1]} image, "
            f"k={args.levels} on the multiprocessing runtime"
        )
        if plan is not None:
            _print_fault_events(rec)
        _export_wall(args, rec)
    else:
        image = _load_image(args)
        if plan is not None and not plan.is_empty:
            raise ReproError(
                "the simulator fault model covers components only; "
                "use --runtime for histogram fault injection"
            )
        machine, rec = _sim_recorder(args, params)
        res = parallel_histogram(
            image, args.levels, args.processors, params, machine=machine,
            kernel=args.kernel,
        )
        hist = res.histogram
        print(
            f"histogram of {image.shape[0]}x{image.shape[1]} image, k={args.levels}, "
            f"p={args.processors} on simulated {params.name}"
        )
        print(f"simulated time: {res.elapsed_s * 1e3:.3f} ms")
        if args.report:
            print(res.report.summary())
        _export_sim(args, rec)
    occupied = np.flatnonzero(hist)
    print(f"occupied levels: {len(occupied)}/{args.levels}")
    top = np.argsort(hist)[::-1][:8]
    for level in top:
        if hist[level]:
            bar = "#" * max(1, int(40 * hist[level] / hist.max()))
            print(f"  level {level:>4}: {hist[level]:>9}  {bar}")
    if args.equalize:
        if image is None:
            image = _load_image(args)
        eq = parallel_equalize(image, args.levels, args.processors, params)
        write_pgm(args.equalize, eq.image)
        print(f"equalized image written to {args.equalize}")
    return 0


def _components_darray(args, plan) -> int:
    from repro.darray import darray_components

    rec = _wall_recorder(args, plan)
    res = darray_components(
        _darray_source(args),
        p=args.processors,
        transport=args.transport,
        connectivity=args.connectivity,
        grey=args.grey,
        kernel=args.kernel,
        recorder=rec,
        fault_plan=plan,
        spill_dir=args.spill_dir,
        resident_tiles=args.resident_tiles,
    )
    labels = res.labels
    print(
        f"darray/{args.transport}: {labels.shape[0]}x{labels.shape[1]}, "
        f"p={args.processors} ({res.grid.v}x{res.grid.w} tiles)"
    )
    print(
        f"{res.n_components} components ({args.connectivity}-connectivity, "
        f"{'grey' if args.grey else 'binary'})"
    )
    _print_darray_stats(res.stats)
    if plan is not None:
        _print_fault_events(rec)
    _export_wall(args, rec)
    if args.ascii:
        print(ascii_labels(np.asarray(labels), width=args.ascii))
    if args.output:
        from repro.analysis.regions import compact_labels

        compacted = compact_labels(np.asarray(labels))
        n_regions = int(compacted.max(initial=0))
        if n_regions > 255:
            raise ReproError(
                f"label map has {n_regions} components, which does not fit an "
                f"8-bit PGM (max 255); use a smaller image or coarser levels"
            )
        write_pgm(args.output, compacted)
        print(f"label map written to {args.output} (compacted labels)")
    return 0


def cmd_components(args) -> int:
    engine = _resolve_engine(args)
    if engine == "darray":
        plan = _load_fault_plan(args)
        return _components_darray(args, plan)
    image = _load_image(args)
    params = load_machine(args.machine)
    plan = _load_fault_plan(args)
    if engine == "runtime":
        wall_rec = None
        if args.trace_out or args.metrics_out or plan is not None:
            from repro.obs import WallRecorder

            wall_rec = WallRecorder()
        from repro.runtime import resolve_workers

        labels = runtime_components(
            image,
            connectivity=args.connectivity,
            grey=args.grey,
            workers=resolve_workers(args.processors, image.shape),
            backend="process",
            kernel=args.kernel,
            recorder=wall_rec,
            fault_plan=plan,
        )
        print(f"runtime backend: {image.shape[0]}x{image.shape[1]}")
        if plan is not None:
            _print_fault_events(wall_rec)
        _export_wall(args, wall_rec)
    else:
        machine, rec = _sim_recorder(args, params, force=plan is not None)
        res = parallel_components(
            image,
            args.processors,
            params,
            connectivity=args.connectivity,
            grey=args.grey,
            machine=machine,
            kernel=args.kernel,
            fault_plan=plan,
        )
        labels = res.labels
        print(
            f"simulated {params.name}, p={args.processors}: "
            f"{res.elapsed_s * 1e3:.3f} ms"
        )
        if plan is not None:
            nf = sum(s.n_failovers for s in res.step_stats)
            print(f"merge-round failovers: {nf}")
            _print_fault_events(rec)
        if args.report:
            print(res.report.summary(top=8))
        _export_sim(args, rec)
    table = region_table(labels, image)
    print(
        f"{len(table)} components ({args.connectivity}-connectivity, "
        f"{'grey' if args.grey else 'binary'})"
    )
    for rank, idx in enumerate(np.argsort(table.areas)[::-1][:5], start=1):
        r0, c0, r1, c1 = table.bbox[idx]
        print(
            f"  #{rank}: area {table.areas[idx]:>8}, level {table.colors[idx]:>4}, "
            f"bbox ({r0},{c0})-({r1},{c1})"
        )
    if args.ascii:
        print(ascii_labels(labels, width=args.ascii))
    if args.output:
        from repro.analysis.regions import compact_labels

        compacted = compact_labels(labels)
        n_regions = int(compacted.max(initial=0))
        if n_regions > 255:
            raise ReproError(
                f"label map has {n_regions} components, which does not fit an "
                f"8-bit PGM (max 255); use a smaller image or coarser levels"
            )
        write_pgm(args.output, compacted)
        print(f"label map written to {args.output} (compacted labels)")
    return 0


def cmd_verify(args) -> int:
    from repro.analysis.verification import VerificationError, verify_labels

    image = read_pnm(args.image)
    labels = read_pnm(args.labels)
    try:
        # Label maps written by this CLI are compacted, so verify the
        # partition up to renaming.
        verify_labels(
            image,
            labels.astype("int64"),
            connectivity=args.connectivity,
            grey=args.grey,
            reference_engine=args.reference,
            canonical=False,
        )
    except VerificationError as exc:
        print(f"FAILED: {exc}")
        return 1
    print(
        f"OK: {args.labels} is a correct "
        f"{args.connectivity}-connectivity {'grey' if args.grey else 'binary'} "
        f"labeling of {args.image}"
    )
    return 0


def cmd_report(args) -> int:
    from repro.analysis.report import assemble_report

    text = assemble_report(args.results)
    if args.output:
        import pathlib as _pathlib

        _pathlib.Path(args.output).write_text(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _check_dynamic() -> list[str]:
    """Smoke-run the packaged SPMD programs under full shadow checking."""
    from repro.bdm.machine import Machine
    from repro.core.spmd_programs import spmd_broadcast, spmd_histogram, spmd_transpose

    ran = []
    machine = Machine(4, check_hazards=True)
    spmd_transpose(machine, np.arange(4 * 16).reshape(4, 16))
    ran.append("spmd_transpose")
    machine = Machine(4, check_hazards=True)
    spmd_broadcast(machine, np.arange(16))
    ran.append("spmd_broadcast")
    machine = Machine(4, check_hazards=True)
    rng = np.random.default_rng(0)
    spmd_histogram(rng.integers(0, 16, size=(16, 16)), 16, 4)
    ran.append("spmd_histogram")
    return ran


def cmd_check(args) -> int:
    from repro.checker import engine
    from repro.checker.emitters import dump_json, to_json_payload, to_sarif
    from repro.checker.lint import iter_python_files
    from repro.checker.rules import format_catalog

    if args.list_rules:
        print(format_catalog())
        return 0
    paths = args.paths or [p for p in ("src", "examples") if os.path.isdir(p)] or ["."]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        raise ReproError(f"no such path(s): {', '.join(missing)}")
    select = engine.expand_selection(
        args.select.split(",") if args.select else None, flag="--select"
    )
    ignore = engine.expand_selection(
        args.ignore.split(",") if args.ignore else None, flag="--ignore"
    )
    scanned = {p.as_posix() for p in iter_python_files(paths)}
    n_files = len(scanned)
    diags = engine.analyze_paths(paths, select=select, ignore=ignore)

    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline:
        if os.path.exists(engine.DEFAULT_BASELINE):
            baseline_path = engine.DEFAULT_BASELINE
    if args.update_baseline:
        target = baseline_path or engine.DEFAULT_BASELINE
        engine.save_baseline(target, engine.baseline_from(diags))
        print(f"baseline: wrote {len(diags)} finding(s) to {target}")
        return 0
    suppressed = 0
    if baseline_path is not None:
        result = engine.apply_baseline(
            diags, engine.load_baseline(baseline_path), scanned=scanned
        )
        diags, suppressed = result.diags, result.suppressed
        for file, rules in sorted(result.stale.items()):
            # Judge staleness only for rules the current selection ran.
            rules = {
                r: n
                for r, n in rules.items()
                if (select is None or select.matches(r))
                and not (ignore is not None and ignore.matches(r))
            }
            if not rules:
                continue
            listed = ", ".join(f"{r}x{n}" for r, n in sorted(rules.items()))
            print(
                f"baseline: stale allowance for {file} ({listed}); "
                f"run --update-baseline to expire it"
            )

    n_errors = sum(1 for d in diags if d.severity == "error")
    n_warnings = len(diags) - n_errors
    if args.format == "text":
        for diag in diags:
            print(diag.format())
        summary = f"checked {n_files} file(s): {n_errors} error(s), " f"{n_warnings} warning(s)"
        if suppressed:
            summary += f", {suppressed} baselined"
        print(summary)
    else:
        if args.format == "json":
            payload = to_json_payload(diags, files_checked=n_files, suppressed=suppressed)
        else:
            payload = to_sarif(diags, tool_version=_package_version())
        text = dump_json(payload)
        if args.output:
            with open(args.output, "w") as fh:
                fh.write(text)
            print(
                f"wrote {args.format} report ({len(diags)} finding(s), "
                f"{suppressed} baselined) to {args.output}"
            )
        else:
            print(text, end="")
    if args.dynamic:
        ran = _check_dynamic()
        print(
            f"dynamic: {len(ran)} built-in SPMD program(s) ran clean under "
            f"the shadow-memory race detector ({', '.join(ran)})"
        )
    return 1 if n_errors else 0


def _follow_trace(args) -> int:
    """Print one trace's span tree from a trace file or a live server."""
    import json as _json

    if args.socket:
        import asyncio

        from repro.service import request_over_socket

        resp = asyncio.run(request_over_socket(args.socket, {"op": "trace"}))
        if not resp.get("ok"):
            err = resp.get("error", {})
            raise ReproError(f"trace op failed: {err.get('message', err)}")
        obj = resp["result"]
        source = args.socket
    else:
        path = args.trace_file or args.trace_out
        try:
            with open(path) as fh:
                obj = _json.load(fh)
        except OSError as exc:
            raise ReproError(
                f"cannot read trace file {path!r} ({exc}); "
                f"use --socket for a live server or --trace-file for an export"
            ) from None
        source = path
    events = obj.get("traceEvents", [])
    lanes = {
        (e.get("pid"), e.get("tid")): e.get("args", {}).get("name")
        for e in events
        if e.get("ph") == "M" and e.get("name") == "thread_name"
    }
    spans = [
        e for e in events
        if e.get("ph") == "X"
        and str(e.get("args", {}).get("trace", "")).startswith(args.follow)
    ]
    if not spans:
        known = sorted({
            str(e["args"]["trace"])[:8]
            for e in events
            if e.get("ph") == "X" and e.get("args", {}).get("trace")
        })
        raise ReproError(
            f"no spans for trace {args.follow!r} in {source}; "
            f"known trace(s): {', '.join(known) or 'none'}"
        )
    by_id = {e["args"]["span"]: e for e in spans if e["args"].get("span")}
    children: dict = {}
    roots = []
    for e in sorted(spans, key=lambda e: e.get("ts", 0.0)):
        parent = e["args"].get("parent")
        if parent in by_id:
            children.setdefault(parent, []).append(e)
        else:
            roots.append(e)
    t_base = min(e.get("ts", 0.0) for e in spans)
    trace_id = spans[0]["args"]["trace"]
    total_ms = max(
        e.get("ts", 0.0) + e.get("dur", 0.0) for e in spans
    ) / 1e3 - t_base / 1e3
    print(f"trace {trace_id}: {len(spans)} span(s), {total_ms:.2f} ms ({source})")

    def _print(e, prefix: str, last: bool) -> None:
        lane = lanes.get((e.get("pid"), e.get("tid")), "")
        extra = f"  links={len(e['args']['links'])}" if e["args"].get("links") else ""
        if e["args"].get("coalesced_onto"):
            extra += f"  coalesced_onto={e['args']['coalesced_onto']}"
        branch = "`- " if last else "|- "
        print(
            f"{prefix}{branch}{e['name']}  [{lane}]  "
            f"{e.get('dur', 0.0) / 1e3:.2f} ms @ "
            f"{(e.get('ts', 0.0) - t_base) / 1e3:+.2f} ms{extra}"
        )
        kids = children.get(e["args"].get("span"), [])
        for i, kid in enumerate(kids):
            _print(kid, prefix + ("   " if last else "|  "), i == len(kids) - 1)

    for i, root in enumerate(roots):
        _print(root, "", i == len(roots) - 1)
    return 0


def cmd_trace(args) -> int:
    if args.follow:
        return _follow_trace(args)
    image = _load_image(args)
    if args.engine == "sim":
        from repro.bdm.machine import Machine
        from repro.obs import MachineRecorder, comm_heatmap

        params = load_machine(args.machine)
        machine = Machine(args.processors, params)
        rec = MachineRecorder(machine)
        if args.workload == "histogram":
            parallel_histogram(
                image, args.levels, args.processors, params, machine=machine,
                kernel=args.kernel,
            )
        else:
            parallel_components(
                image,
                args.processors,
                params,
                connectivity=args.connectivity,
                grey=args.grey,
                machine=machine,
                kernel=args.kernel,
            )
        report = machine.report()
        print(
            f"traced {args.workload} on simulated {params.name}, "
            f"p={machine.p}: {len(report.phases)} phases, "
            f"{report.words_moved} words moved, "
            f"{report.elapsed_s * 1e3:.3f} ms simulated"
        )
        if args.report:
            print(report.summary(top=8))
        if args.heatmap:
            print(comm_heatmap(rec.comm_matrix))
        _export_sim(args, rec)
    else:
        from repro.obs import WallRecorder
        from repro.runtime import histogram as rt_histogram
        from repro.runtime import resolve_workers

        rec = WallRecorder()
        if args.workload == "histogram":
            workers = resolve_workers(args.processors)
            rt_histogram(
                image, args.levels, workers=workers, backend="process",
                kernel=args.kernel, recorder=rec,
            )
        else:
            workers = resolve_workers(args.processors, image.shape)
            runtime_components(
                image,
                connectivity=args.connectivity,
                grey=args.grey,
                workers=workers,
                backend="process",
                kernel=args.kernel,
                recorder=rec,
            )
        print(
            f"traced {args.workload} on the multiprocessing runtime "
            f"({len(rec.worker_lanes)} workers): "
            f"{rec.log.end_s * 1e3:.2f} ms wall, {len(rec.log.spans)} spans"
        )
        _export_wall(args, rec)
    return 0


def _chaos_runner(args, image, n_tasks):
    """Baseline result + a ``run_one(plan) -> (result, event_names)`` closure."""
    if args.engine == "process":
        from repro.obs import WallRecorder
        from repro.runtime import components as rt_components
        from repro.runtime import histogram as rt_histogram

        if args.workload == "histogram":
            baseline = rt_histogram(
                image, args.levels, backend="serial", kernel=args.kernel
            )

            def run_one(plan):
                rec = WallRecorder()
                res = rt_histogram(
                    image, args.levels, workers=n_tasks, backend="process",
                    kernel=args.kernel, recorder=rec, fault_plan=plan,
                    timeout=args.timeout, max_retries=args.retries,
                )
                return res, [i.name for i in rec.fault_events()]
        else:
            baseline = rt_components(
                image, connectivity=args.connectivity, grey=args.grey,
                backend="serial", kernel=args.kernel,
            )

            def run_one(plan):
                rec = WallRecorder()
                res = rt_components(
                    image, connectivity=args.connectivity, grey=args.grey,
                    workers=n_tasks, backend="process", kernel=args.kernel,
                    recorder=rec, fault_plan=plan,
                    timeout=args.timeout, max_retries=args.retries,
                )
                return res, [i.name for i in rec.fault_events()]
    else:
        from repro.bdm.machine import Machine
        from repro.obs import MachineRecorder

        params = load_machine(args.machine)
        baseline = parallel_components(
            image, n_tasks, params, connectivity=args.connectivity,
            grey=args.grey, kernel=args.kernel,
        ).labels

        def run_one(plan):
            machine = Machine(n_tasks, params)
            rec = MachineRecorder(machine)
            res = parallel_components(
                image, n_tasks, params, connectivity=args.connectivity,
                grey=args.grey, machine=machine, kernel=args.kernel,
                fault_plan=plan,
            )
            return res.labels, [i.name for i in rec.fault_events()]

    return baseline, run_one


def _chaos_case(run_one, plan, baseline) -> tuple[str, list[str], bool]:
    """One plan's verdict: (outcome text, fault event names, ok?)."""
    import warnings

    from repro.utils.errors import DegradedRunWarning, FaultError

    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result, events = run_one(plan)
    except FaultError as exc:
        # A typed, prompt failure is an acceptable outcome: the run did
        # not hang and did not return wrong labels.
        return f"typed {type(exc).__name__}", [], True
    degraded = any(isinstance(w.message, DegradedRunWarning) for w in caught)
    if not np.array_equal(result, baseline):
        return "MISMATCH vs unfaulted baseline", events, False
    return ("recovered, identical (degraded)" if degraded
            else "recovered, identical"), events, True


def cmd_chaos(args) -> int:
    from repro.core.merge import merge_schedule
    from repro.core.tiles import ProcessorGrid
    from repro.faults import assert_no_shm_leak, single_fault_plans

    if args.tier == "service":
        return _chaos_service(args)
    image = _load_image(args)
    if args.engine == "sim" and args.workload == "histogram":
        raise ReproError("the simulator fault model covers components only")
    if args.engine == "process":
        from repro.runtime import resolve_workers

        shape = image.shape if args.workload == "components" else None
        n_tasks = resolve_workers(args.processors, shape)
    else:
        n_tasks = args.processors
    n_rounds = 0
    if args.workload == "components":
        n_rounds = len(merge_schedule(ProcessorGrid(n_tasks, image.shape)))
    plans = single_fault_plans(
        workload=args.workload, engine=args.engine,
        n_rounds=n_rounds, n_tasks=n_tasks, seed=args.seed,
    )
    print(
        f"chaos matrix: {len(plans)} single-fault plan(s) for {args.workload} "
        f"on the {args.engine} engine ({n_tasks} tasks, {n_rounds} merge rounds)"
    )
    if args.list:
        for plan in plans:
            print(f"  {plan.describe()}")
        return 0

    baseline, run_one = _chaos_runner(args, image, n_tasks)
    failures = 0
    with assert_no_shm_leak():
        for i, plan in enumerate(plans, start=1):
            outcome, events, ok = _chaos_case(run_one, plan, baseline)
            if not ok:
                failures += 1
            suffix = f"  [{', '.join(events)}]" if events else ""
            print(f"  [{i:>2}/{len(plans)}] {plan.describe():<32} {outcome}{suffix}")
    if failures:
        print(f"{failures} plan(s) FAILED")
        return 1
    print("all plans recovered (no hangs, no mismatches, no leaked shm segments)")
    return 0


def _serve_selftest(config, recorder=None, trace_out=None, wire="ndjson") -> int:
    """In-process round-trip: batched requests, then a cache hit on repeat.

    A live-socket leg follows in the requested ``wire`` mode (ndjson or
    the zero-copy shmem descriptors) and must agree bit-for-bit with
    the in-process answer, with no shared-memory segment left behind.
    """
    import asyncio
    import tempfile

    from repro.faults.leakcheck import assert_no_shm_leak
    from repro.images import darpa_like
    from repro.service import (
        BatchService,
        Client,
        ServiceServer,
        compute_over_socket,
    )

    with Client(config, recorder=recorder) as client:
        image = darpa_like(64, 256)
        first = client.submit("histogram", image, k=256)
        again = client.submit("histogram", image, k=256)
        if not np.array_equal(first, again):
            raise ReproError("selftest: cache returned a different histogram")
        labels = client.submit("components", image, grey=True)
        if labels.shape != image.shape:
            raise ReproError("selftest: bad label-map shape")
        snap = client.stats()
    cache = snap.get("cache", {})
    if config.cache and not cache.get("hits"):
        raise ReproError("selftest: repeated request did not hit the cache")

    async def _socket_leg() -> np.ndarray:
        sock = os.path.join(tempfile.mkdtemp(prefix="repro-selftest-"), "svc.sock")
        server = ServiceServer(BatchService(config), sock)
        await server.start()
        try:
            return await compute_over_socket(
                sock, "histogram", image, wire=wire, k=256
            )
        finally:
            await server.stop()

    with assert_no_shm_leak():
        wired = asyncio.run(_socket_leg())
    if not np.array_equal(first, wired):
        raise ReproError(f"selftest: {wire} socket round trip diverged")
    if recorder is not None and trace_out:
        from repro.obs import write_chrome_trace

        recorder.drain()
        write_chrome_trace(trace_out, recorder.log)
        print(f"trace written to {trace_out} ({len(recorder.log.spans)} spans)")
    print(
        f"selftest OK: {snap['service']['completed']} request(s) served, "
        f"{snap['batcher']['batches']} batch(es), "
        f"{cache.get('hits', 0)} cache hit(s), "
        f"socket round trip via {wire} wire"
    )
    return 0


def _shard_passthrough(args) -> list[str]:
    """The ``repro serve`` argv forwarded to every spawned shard."""
    argv = [
        "--batch-size", str(args.batch_size),
        "--max-delay", str(args.max_delay),
        "--queue-depth", str(args.queue_depth),
        "--cache-entries", str(args.cache_entries),
        "--cache-bytes", str(args.cache_bytes),
        "--drain-deadline", str(args.drain_deadline),
    ]
    if args.no_cache:
        argv.append("--no-cache")
    if args.no_metrics:
        argv.append("--no-metrics")
    if args.kernel:
        argv.extend(["--kernel", args.kernel])
    if args.timeout is not None:
        argv.extend(["--timeout", str(args.timeout)])
    if args.retries is not None:
        argv.extend(["--retries", str(args.retries)])
    return argv


def _serve_router(args) -> int:
    """``repro serve --shards N``: spawn N shards, route on --socket."""
    import asyncio

    from repro.service import RouterConfig, ShardRouter

    config = RouterConfig(
        shards=args.shards,
        workers_per_shard=args.workers,
        shard_args=_shard_passthrough(args),
        drain_deadline_s=args.drain_deadline,
    )

    async def _run() -> None:
        router = ShardRouter(args.socket, config)
        await router.start()
        print(
            f"routing on {args.socket}: {args.shards} shard(s) x "
            f"{args.workers} worker(s), vnodes={config.vnodes}, "
            f"hedge after {config.hedge_s * 1e3:.0f}ms",
            flush=True,
        )
        try:
            await router.serve_until_shutdown()
        finally:
            rt = router.snapshot()["router"]
            print(
                f"routed {rt['completed']} request(s); "
                f"{rt['reroutes']} reroute(s), {rt['hedges']} hedge(s), "
                f"{rt['respawns']} respawn(s)",
                flush=True,
            )

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("interrupted", flush=True)
    finally:
        if args.socket and os.path.exists(args.socket):
            os.unlink(args.socket)
    return 0


def _serve_router_selftest(args) -> int:
    """Routed-tier round trip: N spawned shards behind one router socket.

    Two passes of a distinct-image workload go through the router in
    the requested wire mode.  Every reply must be bit-identical to the
    serial reference; the repeat pass must be answered from the shard
    caches (digest affinity pins each image to one shard, so aggregate
    cache capacity is the *sum* of the shards'); traffic must actually
    spread across shards; and nothing may leak in ``/dev/shm``.
    """
    import asyncio
    import json as _json
    import tempfile

    from repro.faults.leakcheck import assert_no_shm_leak
    from repro.kernels import resolve_backend
    from repro.service import RouterConfig, ShardRouter, WireClient
    from repro.service.ops import canonical_params, compute

    kernel = resolve_backend(args.kernel)
    rng = np.random.default_rng(0)
    images = [
        rng.integers(0, 256, size=(48, 48), dtype=np.uint8) for _ in range(6)
    ]
    refs = [
        compute("histogram", im,
                canonical_params("histogram", im, {"k": 256}), kernel)
        for im in images
    ]

    async def _run() -> tuple[dict, int]:
        base = tempfile.mkdtemp(prefix="repro-router-")
        config = RouterConfig(
            shards=args.shards,
            runtime_dir=base,
            workers_per_shard=args.workers,
            shard_args=_shard_passthrough(args),
            drain_deadline_s=args.drain_deadline,
        )
        router = ShardRouter(os.path.join(base, "router.sock"), config)
        await router.start()
        try:
            async with WireClient(router.socket_path, wire=args.wire) as client:
                for _pass in range(2):
                    for im, ref in zip(images, refs):
                        out = await client.compute("histogram", im, k=256)
                        if not np.array_equal(out, ref):
                            raise ReproError(
                                "router selftest: reply diverged from the "
                                "serial reference"
                            )
            cache_hits = 0
            for sid in router.shard_ids:
                reply = _json.loads(await router._one_shot(
                    sid, b'{"op": "stats"}\n', timeout_s=5.0
                ))
                cache_hits += reply["result"].get("cache", {}).get("hits", 0)
            return router.snapshot(), cache_hits
        finally:
            await router.stop()

    with assert_no_shm_leak():
        snap, cache_hits = asyncio.run(_run())
    rt = snap["router"]
    shards_hit = sum(1 for s in snap["shards"].values() if s["forwards"])
    expect = 2 * len(images)
    if rt["completed"] != expect or rt["errors"]:
        raise ReproError(
            f"router selftest: {rt['completed']}/{expect} request(s) completed, "
            f"{rt['errors']} error(s)"
        )
    if args.shards > 1 and shards_hit < 2:
        raise ReproError(
            "router selftest: all traffic landed on one shard "
            "(consistent-hash affinity is not spreading)"
        )
    if not args.no_cache and cache_hits < len(images):
        raise ReproError(
            f"router selftest: repeat pass hit the partitioned cache only "
            f"{cache_hits}x (expected >= {len(images)})"
        )
    print(
        f"router selftest OK: {rt['completed']} request(s) over {args.wire} "
        f"wire across {shards_hit}/{args.shards} shard(s), "
        f"{cache_hits} partitioned cache hit(s), "
        f"{rt['reroutes']} reroute(s), healthy={rt['healthy']}"
    )
    return 0


def _chaos_service(args) -> int:
    """The service-tier chaos drill: SIGKILL one of N shards mid-load.

    A seeded repeated-image workload streams through the router over
    the ndjson wire while one shard -- the home shard of the *next*
    request, so the failure sits on the critical path -- is killed with
    SIGKILL.  Acceptance: every request completes bit-identical to the
    serial reference, the killed shard's breaker walks open ->
    half-open -> closed against the respawned process, at least one
    respawn happened, and ``/dev/shm`` ends clean.
    """
    import asyncio
    import base64 as _b64
    import hashlib as _hashlib
    import tempfile
    import time as _time

    from repro.faults import assert_no_shm_leak
    from repro.kernels import resolve_backend
    from repro.service import RouterConfig, ShardRouter, WireClient
    from repro.service.ops import canonical_params, compute

    if args.requests < 2:
        raise ReproError("--tier service needs at least 2 requests")
    kill_at = (
        args.kill_after if args.kill_after is not None
        else max(1, args.requests // 3)
    )
    if not 0 < kill_at < args.requests:
        raise ReproError(
            f"--kill-after must be in 1..{args.requests - 1} "
            f"(the kill must land mid-load)"
        )
    kernel = resolve_backend(args.kernel)
    rng = np.random.default_rng(args.seed)
    images = [
        rng.integers(0, 256, size=(48, 48), dtype=np.uint8)
        for _ in range(min(8, args.requests))
    ]
    refs = [
        compute("histogram", im,
                canonical_params("histogram", im, {"k": args.levels}), kernel)
        for im in images
    ]

    def _ndjson_key(im: np.ndarray) -> bytes:
        # The router's affinity key for an ndjson request: sha256 of
        # the base64 pixel span (repro.service.router.routing_key).
        return _hashlib.sha256(
            _b64.b64encode(np.ascontiguousarray(im).tobytes())
        ).digest()

    async def _run() -> dict:
        base = tempfile.mkdtemp(prefix="repro-chaos-svc-")
        shard_args = ["--timeout", str(args.timeout),
                      "--retries", str(args.retries)]
        if args.kernel:
            shard_args.extend(["--kernel", args.kernel])
        config = RouterConfig(
            shards=args.shards,
            runtime_dir=base,
            workers_per_shard=1,
            open_s=0.2,
            probe_interval_s=0.05,
            hedge_s=0.5,
            shard_args=shard_args,
        )
        router = ShardRouter(os.path.join(base, "router.sock"), config)
        await router.start()
        outcome = {"served": 0, "mismatches": 0, "killed": None}
        try:
            async with WireClient(router.socket_path, wire="ndjson") as client:
                for i in range(args.requests):
                    idx = i % len(images)
                    if i == kill_at:
                        sid = router.ring.route(_ndjson_key(images[idx]))
                        outcome["killed"] = sid
                        router.kill_shard(sid)
                        print(f"  [kill] SIGKILL shard {sid} "
                              f"before request {i}", flush=True)
                    out = await client.compute(
                        "histogram", images[idx], k=args.levels
                    )
                    outcome["served"] += 1
                    if not np.array_equal(out, refs[idx]):
                        outcome["mismatches"] += 1
            # Load is done; let the breaker finish its open -> half-open
            # -> closed walk against the respawned shard.
            breaker = router.breakers[outcome["killed"]]
            deadline = _time.monotonic() + 30.0
            while not breaker.recovered() and _time.monotonic() < deadline:
                await asyncio.sleep(0.05)
            outcome["breaker"] = breaker.snapshot()
            outcome["snapshot"] = router.snapshot()
        finally:
            await router.stop()
        return outcome

    print(
        f"service chaos: {args.shards} shard(s), {args.requests} request(s), "
        f"SIGKILL before request {kill_at} (seed {args.seed})"
    )
    with assert_no_shm_leak(grace_s=2.0):
        outcome = asyncio.run(_run())
    rt = outcome["snapshot"]["router"]
    br = outcome["breaker"]
    print(
        f"  {outcome['served']}/{args.requests} request(s) served, "
        f"{outcome['mismatches']} mismatch(es) vs the serial reference"
    )
    print(
        f"  shard {outcome['killed']}: breaker opened {br['opened']}x, "
        f"half-opened {br['half_opened']}x, closed {br['closed']}x "
        f"(recovered={br['recovered']}); {rt['respawns']} respawn(s), "
        f"{rt['reroutes']} reroute(s), {rt['hedges']} hedge(s)"
    )
    ok = (
        outcome["served"] == args.requests
        and outcome["mismatches"] == 0
        and br["recovered"]
        and rt["respawns"] >= 1
    )
    if not ok:
        print("service chaos FAILED")
        return 1
    print(
        "service chaos OK: kill absorbed, replies bit-identical, "
        "breaker recovered, no leaked shm segments"
    )
    return 0


def cmd_serve(args) -> int:
    import asyncio
    import contextlib

    from repro.obs import WallRecorder, wall_metrics, write_metrics
    from repro.service import ServiceConfig, ServiceServer

    plan = _load_fault_plan(args)
    recorder = (
        WallRecorder(source="repro-serve")
        if (args.metrics_out or args.trace_out or plan is not None)
        else None
    )
    config = ServiceConfig(
        workers=args.workers,
        kernel=args.kernel,
        max_batch=args.batch_size,
        max_delay_s=args.max_delay,
        queue_depth=args.queue_depth,
        cache=not args.no_cache,
        cache_entries=args.cache_entries,
        cache_bytes=args.cache_bytes,
        timeout_s=args.timeout,
        retries=args.retries,
        fault_plan=plan,
        metrics=not args.no_metrics,
        drain_deadline_s=args.drain_deadline,
    )
    if args.shards > 1:
        if args.selftest:
            return _serve_router_selftest(args)
        if not args.socket:
            raise ReproError("provide --socket PATH (or use --selftest)")
        return _serve_router(args)
    if args.selftest:
        return _serve_selftest(config, recorder, args.trace_out, args.wire)
    if not args.socket:
        raise ReproError("provide --socket PATH (or use --selftest)")

    async def _serve() -> None:
        from repro.service import BatchService

        service = BatchService(config, recorder=recorder)
        server = ServiceServer(service, args.socket, shard_id=args.shard_id)
        await server.start()
        print(
            f"serving on {args.socket} "
            f"({config.workers} worker(s), kernel={config.kernel}, "
            f"batch<={config.max_batch}, window={config.max_delay_s * 1e3:.1f}ms, "
            f"queue depth {config.queue_depth}, "
            f"cache={'on' if config.cache else 'off'}, "
            f"metrics={'on' if config.metrics else 'off'})",
            flush=True,
        )
        samples: list[dict] = []
        writer_task = None
        if args.metrics_interval and service.metrics is not None:
            from repro.obs import write_timeseries

            async def _write_series() -> None:
                while True:
                    await asyncio.sleep(args.metrics_interval)
                    samples.append(service.metrics.snapshot())
                    write_timeseries(args.metrics_series, samples)

            writer_task = asyncio.ensure_future(_write_series())
        try:
            await server.serve_until_shutdown()
        finally:
            if writer_task is not None:
                writer_task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await writer_task
            snap = service.snapshot()
            print(
                f"served {snap['service']['completed']} request(s) in "
                f"{snap.get('batcher', {}).get('batches', 0)} batch(es); "
                f"shed {snap.get('admission', {}).get('shed', 0)}",
                flush=True,
            )
            if args.metrics_interval and service.metrics is not None:
                from repro.obs import write_timeseries

                samples.append(service.metrics.snapshot())
                write_timeseries(args.metrics_series, samples)
                print(
                    f"metrics time series ({len(samples)} sample(s)) "
                    f"written to {args.metrics_series}",
                    flush=True,
                )
            if recorder is not None and args.metrics_out:
                write_metrics(
                    args.metrics_out,
                    wall_metrics(recorder.log, workers=len(recorder.worker_lanes)),
                )
                print(f"metrics written to {args.metrics_out}", flush=True)
            if recorder is not None and args.trace_out:
                from repro.obs import write_chrome_trace

                recorder.drain()
                write_chrome_trace(args.trace_out, recorder.log)
                print(
                    f"trace written to {args.trace_out} "
                    f"({len(recorder.log.spans)} spans; open in Perfetto, or "
                    f"follow one request with "
                    f"'repro trace --follow <trace_id> --trace-file {args.trace_out}')",
                    flush=True,
                )

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("interrupted", flush=True)
    finally:
        if os.path.exists(args.socket):
            os.unlink(args.socket)
    return 0


def _gauge_value(families: dict, name: str) -> float:
    fam = families.get(name)
    if not fam:
        return 0.0
    return sum(s["value"] for s in fam["samples"])


def _render_top(snap: dict, families: dict, *, clear: bool) -> None:
    """One frame of the live dashboard from a stats + metrics sample."""
    svc = snap.get("service", {})
    adm = snap.get("admission", {})
    bat = snap.get("batcher", {})
    cache = snap.get("cache", {})
    execu = snap.get("executor", {})
    if clear:
        print("\x1b[2J\x1b[H", end="")
    print(
        f"requests {svc.get('requests', 0)}  "
        f"(ok {svc.get('completed', 0)}, err {svc.get('errors', 0)})   "
        f"in-flight {_gauge_value(families, 'repro_inflight_requests'):.0f}   "
        f"queue depth {_gauge_value(families, 'repro_queue_depth'):.0f} "
        f"(hwm {adm.get('depth_highwater', 0)})"
    )
    print(
        f"cache: hits {cache.get('hits', 0)} misses {cache.get('misses', 0)} "
        f"hit-rate {cache.get('hit_rate', 0.0) * 100:.1f}%   "
        f"coalesced {svc.get('coalesced', 0)}   "
        f"shed {adm.get('shed', 0)}   expired {adm.get('expired', 0)}"
    )
    print(
        f"batches {bat.get('batches', 0)} "
        f"(mean {bat.get('mean_batch', 0.0):.1f}, max {bat.get('max_batch', 0)})   "
        f"degraded {execu.get('degraded', 0)}   "
        f"respawns {execu.get('respawns', 0)}"
    )
    latency = snap.get("latency", {})
    if latency:
        print(f"{'latency (ms)':<16} {'count':>8} {'p50':>8} {'p95':>8} {'p99':>8}")
        for op, row in sorted(latency.items()):
            print(
                f"  {op:<14} {row['count']:>8} {row['p50_ms']:>8.2f} "
                f"{row['p95_ms']:>8.2f} {row['p99_ms']:>8.2f}"
            )


def cmd_top(args) -> int:
    import asyncio
    import time as _time

    from repro.obs import parse_prometheus_text
    from repro.service import request_over_socket

    async def _sample() -> tuple[dict, dict]:
        stats = await request_over_socket(args.socket, {"op": "stats"})
        metrics = await request_over_socket(args.socket, {"op": "metrics"})
        for resp, what in ((stats, "stats"), (metrics, "metrics")):
            if not resp.get("ok"):
                err = resp.get("error", {})
                raise ReproError(f"{what} op failed: {err.get('message', err)}")
        return stats["result"], parse_prometheus_text(metrics["result"])

    frames = args.count if args.count > 0 else None
    i = 0
    try:
        while True:
            snap, families = asyncio.run(_sample())
            clear = frames != 1 and not args.no_clear
            _render_top(snap, families, clear=clear)
            print(
                f"-- {args.socket}  interval {args.interval:g}s  "
                f"frame {i + 1}{f'/{frames}' if frames else ''}",
                flush=True,
            )
            i += 1
            if frames is not None and i >= frames:
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0


def cmd_machines(args) -> int:
    print(f"{'key':<9} {'name':<16} {'latency':>9} {'bandwidth':>12} {'op':>8}")
    for key in sorted(MACHINES):
        m = MACHINES[key]
        print(
            f"{key:<9} {m.name:<16} {m.latency_s * 1e6:>7.1f}us "
            f"{m.bandwidth_Bps / 1e6:>9.2f}MB/s {m.op_ns:>6.0f}ns"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel image histogramming and connected components "
        "(Bader & JaJa, PPoPP 1995 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_package_version()}"
    )
    subs = parser.add_subparsers(dest="command", required=True)

    gen = subs.add_parser("generate", help="write a test image")
    gen.add_argument("--pattern", type=int, choices=range(0, 10), required=True)
    gen.add_argument("--size", type=int, default=512)
    gen.add_argument("output")
    gen.set_defaults(func=cmd_generate)

    hist = subs.add_parser("histogram", help="parallel histogramming")
    _add_input_args(hist)
    hist.add_argument("-k", "--levels", type=int, default=256)
    hist.add_argument("--equalize", metavar="OUT.pgm", help="write equalized image")
    hist.add_argument("--runtime", action="store_true", help="use the real-parallel backend")
    _add_darray_args(hist)
    hist.add_argument(
        "--fault-plan",
        metavar="PLAN.json",
        help="inject faults from a repro-faults/v1 plan (requires --runtime "
        "or --engine darray --transport shmem)",
    )
    hist.set_defaults(func=cmd_histogram)

    comp = subs.add_parser("components", help="parallel connected components")
    _add_input_args(comp)
    comp.add_argument("--grey", action="store_true", help="grey-scale CC (Section 6)")
    comp.add_argument("--connectivity", type=int, choices=(4, 8), default=8)
    comp.add_argument("--runtime", action="store_true", help="use the real-parallel backend")
    _add_darray_args(comp)
    comp.add_argument(
        "--fault-plan",
        metavar="PLAN.json",
        help="inject faults from a repro-faults/v1 plan (process sites with "
        "--runtime, darray:* sites with --engine darray --transport shmem, "
        "sim:merge shadow-manager failover without)",
    )
    comp.add_argument("--ascii", type=int, metavar="WIDTH", help="print an ASCII label map")
    comp.add_argument("-o", "--output", metavar="OUT.pgm", help="write the label map")
    comp.set_defaults(func=cmd_components)

    ver = subs.add_parser("verify", help="verify a label map against an image")
    ver.add_argument("image", help="PGM/PBM input image")
    ver.add_argument("labels", help="PGM label map to verify")
    ver.add_argument("--grey", action="store_true")
    ver.add_argument("--connectivity", type=int, choices=(4, 8), default=8)
    ver.add_argument("--reference", default="sv", help="independent engine for the canonical labeling")
    ver.set_defaults(func=cmd_verify)

    rep = subs.add_parser("report", help="assemble the reproduction report")
    rep.add_argument(
        "--results", default="benchmarks/results", help="artifact directory"
    )
    rep.add_argument("-o", "--output", help="write the report to a file")
    rep.set_defaults(func=cmd_report)

    chk = subs.add_parser(
        "check",
        help="run the static-analysis engine (SPMD/ASYNC/RES/ERR/COST) "
        "and optionally smoke-run the race detector",
    )
    chk.add_argument(
        "paths",
        nargs="*",
        help="files/directories to scan (default: src and examples, else .)",
    )
    chk.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated families or rule IDs to report "
        "(e.g. ASYNC,RES or SPMD001,SPMD003)",
    )
    chk.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated families or rule IDs to suppress",
    )
    chk.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default text)",
    )
    chk.add_argument(
        "-o",
        "--output",
        help="write json/sarif output to a file instead of stdout",
    )
    chk.add_argument(
        "--baseline",
        metavar="FILE",
        help="baseline file of grandfathered findings "
        "(default: .repro-checker-baseline.json when it exists)",
    )
    chk.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    chk.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file from the current findings and exit",
    )
    chk.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    chk.add_argument(
        "--dynamic",
        action="store_true",
        help="also execute the built-in SPMD programs under the "
        "shadow-memory race detector",
    )
    chk.set_defaults(func=cmd_check)

    trc = subs.add_parser(
        "trace",
        help="run a workload under the observability layer and export "
        "a Chrome trace + metrics snapshot",
    )
    _add_input_args(trc)
    trc.add_argument(
        "--workload",
        choices=("components", "histogram"),
        default="components",
        help="workload to trace (default components)",
    )
    trc.add_argument(
        "--engine",
        choices=("sim", "runtime"),
        default="sim",
        help="sim = BDM simulator (simulated clock), "
        "runtime = real multiprocessing backend (wall clock)",
    )
    trc.add_argument("-k", "--levels", type=int, default=256)
    trc.add_argument("--grey", action="store_true", help="grey-scale CC workload")
    trc.add_argument("--connectivity", type=int, choices=(4, 8), default=8)
    trc.add_argument(
        "--heatmap",
        action="store_true",
        help="print the (server, mover) communication matrix (sim engine)",
    )
    trc.add_argument(
        "--follow",
        metavar="TRACE_ID",
        help="print one request's span tree (id or unique prefix) instead of "
        "running a workload; reads spans from --socket or --trace-file",
    )
    trc.add_argument(
        "--socket", metavar="PATH",
        help="with --follow: fetch the span log from a live server's "
        "'trace' control op",
    )
    trc.add_argument(
        "--trace-file", metavar="TRACE.json",
        help="with --follow: read spans from a Chrome-trace export "
        "(default: the --trace-out path)",
    )
    trc.set_defaults(func=cmd_trace, trace_out="trace.json")

    cha = subs.add_parser(
        "chaos",
        help="run the seeded single-fault chaos matrix and report recovery",
    )
    cha.add_argument("image", nargs="?", help="PGM/PBM input file")
    cha.add_argument(
        "--pattern",
        type=int,
        choices=range(0, 10),
        help="generate input: 1-9 = Figure 1 test images, 0 = DARPA-like scene",
    )
    cha.add_argument("--size", type=int, default=128, help="pattern size (default 128)")
    cha.add_argument("-p", "--processors", type=int, default=16)
    cha.add_argument(
        "--workload", choices=("components", "histogram"), default="components"
    )
    cha.add_argument(
        "--engine",
        choices=("process", "sim"),
        default="process",
        help="process = hardened multiprocessing runtime, "
        "sim = BDM simulator (shadow-manager failover; components only)",
    )
    cha.add_argument(
        "--machine",
        default="cm5",
        help=f"machine model for --engine sim ({', '.join(sorted(MACHINES))})",
    )
    cha.add_argument("-k", "--levels", type=int, default=256)
    cha.add_argument("--grey", action="store_true")
    cha.add_argument("--connectivity", type=int, choices=(4, 8), default=8)
    cha.add_argument(
        "--kernel", choices=("python", "numpy", "numba"), default=None,
        help="local-step kernel backend",
    )
    cha.add_argument(
        "--tier",
        choices=("engine", "service"),
        default="engine",
        help="engine = seeded single-fault matrix inside one run (default); "
        "service = SIGKILL a live shard process mid-load behind the router "
        "and require bit-identical replies, breaker recovery, a respawn, "
        "and zero /dev/shm leaks",
    )
    cha.add_argument(
        "--shards", type=int, default=3,
        help="shard count for --tier service (default 3)",
    )
    cha.add_argument(
        "--requests", type=int, default=30,
        help="requests to drive for --tier service (default 30)",
    )
    cha.add_argument(
        "--kill-after", type=int, default=None,
        help="kill the target shard before this request index "
        "(default: a third of the way in)",
    )
    cha.add_argument("--seed", type=int, default=0, help="fault-plan seed")
    cha.add_argument(
        "--timeout", type=float, default=2.0,
        help="per-task deadline in seconds (default 2.0; crash/hang plans "
        "recover via deadline expiry, so this bounds each plan's cost)",
    )
    cha.add_argument(
        "--retries", type=int, default=2, help="retry budget per task (default 2)"
    )
    cha.add_argument(
        "--list", action="store_true", help="print the matrix and exit without running"
    )
    cha.set_defaults(func=cmd_chaos)

    srv = subs.add_parser(
        "serve",
        help="run the async batch-serving layer on a unix socket",
    )
    srv.add_argument(
        "--socket", metavar="PATH", help="unix-domain socket path to listen on"
    )
    srv.add_argument(
        "--selftest",
        action="store_true",
        help="serve a short in-process workload (batched + cached) and exit; "
        "with --shards N, spin a routed shard tier and check affinity instead",
    )
    srv.add_argument("--workers", type=int, default=2, help="pool workers (default 2)")
    srv.add_argument(
        "--shards", type=int, default=1,
        help="front N shard processes with a consistent-hash router on "
        "--socket (default 1 = a single plain server, no router)",
    )
    srv.add_argument(
        "--shard-id", type=int, default=None,
        help="identity of this server inside a sharded tier (set by the "
        "router when it spawns shards; echoed in ping/stats replies)",
    )
    srv.add_argument(
        "--drain-deadline", type=float, default=5.0,
        help="seconds graceful shutdown waits for in-flight requests "
        "before cancelling them (default 5.0)",
    )
    srv.add_argument(
        "--batch-size", type=int, default=8,
        help="max requests coalesced per dispatch (default 8)",
    )
    srv.add_argument(
        "--max-delay", type=float, default=0.002,
        help="batching window in seconds (default 0.002)",
    )
    srv.add_argument(
        "--queue-depth", type=int, default=64,
        help="admission bound; beyond it requests are shed (default 64)",
    )
    srv.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    srv.add_argument(
        "--cache-entries", type=int, default=256,
        help="result-cache entry bound (default 256)",
    )
    srv.add_argument(
        "--cache-bytes", type=int, default=64 << 20,
        help="result-cache byte bound (default 64 MiB)",
    )
    srv.add_argument(
        "--timeout", type=float, default=None,
        help="per-request deadline in seconds (default $REPRO_TASK_TIMEOUT or 300)",
    )
    srv.add_argument(
        "--retries", type=int, default=None,
        help="per-task retry budget (default $REPRO_TASK_RETRIES or 2)",
    )
    srv.add_argument(
        "--kernel", choices=("python", "numpy", "numba"), default=None,
        help="local-step kernel backend",
    )
    srv.add_argument(
        "--wire", choices=("ndjson", "shmem"), default="ndjson",
        help="wire mode for the --selftest socket round trip: ndjson = "
        "base64 pixels inline, shmem = zero-copy shared-memory descriptors",
    )
    srv.add_argument(
        "--fault-plan",
        metavar="PLAN.json",
        help="inject faults from a repro-faults/v1 plan (site svc:exec) so "
        "degraded serving can be exercised",
    )
    srv.add_argument(
        "--metrics-out",
        metavar="OUT.json",
        help="write a metrics snapshot (service:* counters) on shutdown",
    )
    srv.add_argument(
        "--trace-out",
        metavar="TRACE.json",
        help="export the request span tree as Chrome trace-event JSON on "
        "shutdown (also enables tracing for --selftest)",
    )
    srv.add_argument(
        "--no-metrics",
        action="store_true",
        help="disable the metrics registry (the 'metrics' control op will "
        "return an error)",
    )
    srv.add_argument(
        "--metrics-interval",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="append a metrics snapshot to --metrics-series every SECONDS "
        "(default 0 = off)",
    )
    srv.add_argument(
        "--metrics-series",
        metavar="OUT.json",
        default="metrics_series.json",
        help="JSON time-series file for --metrics-interval "
        "(default metrics_series.json)",
    )
    srv.set_defaults(func=cmd_serve)

    top = subs.add_parser(
        "top",
        help="live terminal dashboard over a running server's stats + metrics",
    )
    top.add_argument(
        "--socket", required=True, metavar="PATH",
        help="unix-domain socket of the server to watch",
    )
    top.add_argument(
        "--interval", type=float, default=1.0,
        help="refresh period in seconds (default 1.0)",
    )
    top.add_argument(
        "--count", type=int, default=0,
        help="number of frames to render, 0 = until interrupted (default 0)",
    )
    top.add_argument(
        "--no-clear", action="store_true",
        help="append frames instead of clearing the screen (pipe-friendly)",
    )
    top.set_defaults(func=cmd_top)

    mach = subs.add_parser("machines", help="list machine models")
    mach.set_defaults(func=cmd_machines)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

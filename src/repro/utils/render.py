"""ASCII rendering of images and label maps (debugging / CLI output)."""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ValidationError

#: Ten-step luminance ramp (dark to bright).
_RAMP = " .:-=+*#%@"

#: Distinct characters for label maps.
_LABEL_CHARS = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"


def ascii_image(image: np.ndarray, *, width: int = 64) -> str:
    """Render a grey image as an ASCII luminance map.

    The image is box-downsampled to at most ``width`` columns (rows are
    halved again to compensate for character aspect ratio).
    """
    image = np.asarray(image)
    if image.ndim != 2:
        raise ValidationError(f"image must be 2-D, got shape {image.shape}")
    if width < 1:
        raise ValidationError("width must be positive")
    rows, cols = image.shape
    step = max(1, int(np.ceil(cols / width)))
    sample = image[:: 2 * step, ::step].astype(np.float64)
    hi = sample.max()
    if hi <= 0:
        hi = 1.0
    idx = np.clip((sample / hi * (len(_RAMP) - 1)).astype(int), 0, len(_RAMP) - 1)
    return "\n".join("".join(_RAMP[v] for v in row) for row in idx)


def ascii_labels(labels: np.ndarray, *, width: int = 64) -> str:
    """Render a label map: '.' background, one character per component.

    Components beyond the character set share characters (cyclically),
    which is fine for eyeballing structure.
    """
    labels = np.asarray(labels)
    if labels.ndim != 2:
        raise ValidationError(f"labels must be 2-D, got shape {labels.shape}")
    if width < 1:
        raise ValidationError("width must be positive")
    rows, cols = labels.shape
    step = max(1, int(np.ceil(cols / width)))
    sample = labels[:: 2 * step, ::step]
    uniq = np.unique(sample[sample != 0])
    mapping = {int(v): _LABEL_CHARS[i % len(_LABEL_CHARS)] for i, v in enumerate(uniq)}
    out_rows = []
    for row in sample:
        out_rows.append(
            "".join("." if v == 0 else mapping[int(v)] for v in row.tolist())
        )
    return "\n".join(out_rows)

"""Input validation helpers used across the library."""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ValidationError


def is_power_of_two(x: int) -> bool:
    """Return True iff ``x`` is a positive integral power of two."""
    return isinstance(x, (int, np.integer)) and x > 0 and (x & (x - 1)) == 0


def ilog2(x: int) -> int:
    """Exact integer base-2 logarithm of a power of two.

    Raises
    ------
    ValidationError
        If ``x`` is not a positive power of two.
    """
    if not is_power_of_two(x):
        raise ValidationError(f"expected a power of two, got {x!r}")
    return int(x).bit_length() - 1


def check_positive(name: str, value: int) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if not isinstance(value, (int, np.integer)) or value <= 0:
        raise ValidationError(f"{name} must be a positive integer, got {value!r}")
    return int(value)


def check_power_of_two(name: str, value: int) -> int:
    """Validate that ``value`` is a positive power of two and return it."""
    if not is_power_of_two(value):
        raise ValidationError(f"{name} must be a power of two, got {value!r}")
    return int(value)


def check_image(image: np.ndarray, *, square: bool = True) -> np.ndarray:
    """Validate an image array: 2-D, integer dtype, non-negative values.

    Parameters
    ----------
    image:
        Candidate image; grey level 0 is background by convention.
    square:
        If True (the paper's setting) the image must be ``n x n``.

    Returns
    -------
    numpy.ndarray
        The validated image (unchanged, no copy).
    """
    if not isinstance(image, np.ndarray):
        raise ValidationError(f"image must be a numpy array, got {type(image)!r}")
    if image.ndim != 2:
        raise ValidationError(f"image must be 2-D, got shape {image.shape}")
    if image.size == 0:
        raise ValidationError("image must be non-empty")
    if not np.issubdtype(image.dtype, np.integer):
        raise ValidationError(f"image must have an integer dtype, got {image.dtype}")
    if square and image.shape[0] != image.shape[1]:
        raise ValidationError(f"image must be square, got shape {image.shape}")
    if image.min() < 0:
        raise ValidationError("image grey levels must be non-negative")
    return image

"""Shared utilities: error types and argument validation helpers."""

from repro.utils.errors import (
    ReproError,
    ConfigurationError,
    HazardError,
    ValidationError,
)
from repro.utils.render import ascii_image, ascii_labels
from repro.utils.validation import (
    check_image,
    check_power_of_two,
    check_positive,
    is_power_of_two,
    ilog2,
)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "HazardError",
    "ValidationError",
    "check_image",
    "check_power_of_two",
    "check_positive",
    "is_power_of_two",
    "ilog2",
    "ascii_image",
    "ascii_labels",
]

"""Asyncio lifecycle helpers shared across the service tier."""

from __future__ import annotations

import asyncio
import contextlib


async def cancel_and_reap(task: asyncio.Task, *, poke_s: float = 0.25) -> None:
    """Cancel ``task`` and wait until it has actually finished.

    A bare ``task.cancel(); await task`` can hang forever on Python
    3.11: when an external cancellation lands in the same event-loop
    step as an inner ``asyncio.wait_for`` settling (timeout fired or
    result arrived), ``wait_for`` consumes the cancellation and returns
    normally.  A long-lived loop -- a health-probe monitor, a
    micro-batcher -- then keeps running with the one cancel request
    spent, and the awaiting ``stop()`` never returns.

    Re-issuing the cancel every ``poke_s`` until the task reports done
    closes the race: a swallowed cancel is simply retried, and once one
    lands at a plain ``await`` point it terminates the loop.  When the
    first cancel is delivered cleanly (the overwhelmingly common case)
    the retry loop runs exactly once and adds nothing.
    """
    while not task.done():
        task.cancel()
        await asyncio.wait({task}, timeout=poke_s)
    with contextlib.suppress(asyncio.CancelledError):
        await task

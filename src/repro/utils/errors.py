"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch a single type.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid machine / grid / algorithm configuration was requested.

    Examples: a processor count that is not a power of two, more
    processors than pixels, a grey-level count that is not a power of
    two.
    """


class ValidationError(ReproError, ValueError):
    """An input value (image, array, parameter) failed validation."""


class HazardError(ReproError, RuntimeError):
    """A same-phase memory hazard was detected by the BDM simulator.

    The phase-based SPMD execution model requires that within one phase
    no two processors touch the same word with at least one write
    (real machines would order these through the barrier that separates
    phases).  The per-word shadow memory checker
    (:mod:`repro.checker.shadow`) classifies violations as
    read-after-write, write-after-write, or write-after-read and raises
    this error; the structured record is attached as the ``hazard``
    attribute when available.
    """

    hazard = None  #: :class:`repro.checker.shadow.Hazard` provenance, if any


class LintError(ReproError):
    """Static analysis found a discipline violation in an SPMD program.

    Raised by strict-mode entry points (the ``spmd_strict`` pytest
    fixture); plain ``repro check`` reports diagnostics without raising.
    """

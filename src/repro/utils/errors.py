"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch a single type.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid machine / grid / algorithm configuration was requested.

    Examples: a processor count that is not a power of two, more
    processors than pixels, a grey-level count that is not a power of
    two.
    """


class ValidationError(ReproError, ValueError):
    """An input value (image, array, parameter) failed validation."""


class HazardError(ReproError, RuntimeError):
    """A same-phase memory hazard was detected by the BDM simulator.

    The phase-based SPMD execution model requires that within one phase
    no two processors touch the same word with at least one write
    (real machines would order these through the barrier that separates
    phases).  The per-word shadow memory checker
    (:mod:`repro.checker.shadow`) classifies violations as
    read-after-write, write-after-write, or write-after-read and raises
    this error; the structured record is attached as the ``hazard``
    attribute when available.
    """

    hazard = None  #: :class:`repro.checker.shadow.Hazard` provenance, if any


class LintError(ReproError):
    """Static analysis found a discipline violation in an SPMD program.

    Raised by strict-mode entry points (the ``spmd_strict`` pytest
    fixture); plain ``repro check`` reports diagnostics without raising.
    """


class FaultError(ReproError, RuntimeError):
    """A fault (injected or real) could not be recovered from.

    The hardened runtime (:mod:`repro.runtime.dispatch`) and the
    simulator's failover model (:mod:`repro.core.connected_components`)
    guarantee that a faulted run either returns results bit-identical
    to the unfaulted serial engine -- via retry, shadow-manager
    failover, or degradation to the serial engine -- or raises a typed
    subclass of this error within the configured deadline.  It never
    hangs and never returns silently wrong labels.

    ``site`` names the fault site (see :data:`repro.faults.plan.SITES`)
    when known.
    """

    def __init__(self, message: str, *, site: str | None = None):
        super().__init__(message)
        self.site = site


class TransientTaskError(FaultError):
    """An injected transient exception inside a worker task.

    Retryable: the dispatcher re-runs the task (with backoff) and only
    escalates to :class:`RecoveryExhaustedError` when retries run out.
    """


class CorruptPayloadError(FaultError):
    """A border payload failed validation (e.g. negative labels).

    Raised by the merge task's payload check when an injected (or real)
    corruption is detected before the border graph is solved; retryable
    like :class:`TransientTaskError`.
    """


class TaskTimeoutError(FaultError):
    """A worker task missed its deadline on every allowed attempt.

    Covers both hangs and hard worker crashes (a crashed worker's task
    never completes, so its deadline expires); the dispatcher respawns
    the pool and retries before raising this.
    """


class WorkerCrashError(FaultError):
    """A pool worker died (non-zero exit) while tasks were in flight."""


class RecoveryExhaustedError(FaultError):
    """A retryable task fault persisted past the retry budget."""


class ServiceOverloadError(ReproError, RuntimeError):
    """The serving layer shed a request because its queue was full.

    Raised by the admission controller of :mod:`repro.service` when the
    bounded request queue is at its configured depth.  Load shedding is
    deliberate: refusing work immediately (so callers can back off or
    retry elsewhere) beats queueing unboundedly until every request
    times out.  ``depth`` carries the queue depth at rejection time.
    """

    def __init__(self, message: str, *, depth: int | None = None):
        super().__init__(message)
        self.depth = depth


class ServiceClosedError(ReproError, RuntimeError):
    """A request was submitted to a service that is not running."""


class ServiceDrainingError(ReproError, RuntimeError):
    """A request arrived while the service was draining for shutdown.

    Raised (and sent as a typed wire reply) once a ``shutdown`` control
    op -- or a router-initiated shard retirement -- has been accepted:
    the service stops admitting new work, finishes its in-flight
    batches within the drain deadline, and only then exits.  Clients
    should retry against another shard; the router does so
    automatically.
    """


class ShardDownError(ReproError, RuntimeError):
    """Every routing candidate for a request was down or unreachable.

    Raised by the shard router when the ring walk exhausts all shards
    (each one open-circuited, dead, or failing) without an answer.
    ``attempts`` carries the per-shard failure summary when known.
    """

    def __init__(self, message: str, *, attempts: list | None = None):
        super().__init__(message)
        self.attempts = attempts or []


class DegradedRunWarning(UserWarning):
    """The process-parallel runtime fell back to the serial engine.

    Emitted (with a ``fault:degrade`` obs instant) when fault recovery
    was exhausted and the caller allowed degradation; the returned
    result is still bit-identical to the serial engine -- it just was
    not computed in parallel.
    """


class FailoverError(FaultError):
    """The simulator lost both the manager and its shadow in one round.

    The paper's redundancy covers any *single* manager loss per border:
    the shadow manager directly across the border takes over the solve.
    Losing both ends of a border in the same round leaves nobody to
    solve it, so the run fails with this typed error.
    """

"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch a single type.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid machine / grid / algorithm configuration was requested.

    Examples: a processor count that is not a power of two, more
    processors than pixels, a grey-level count that is not a power of
    two.
    """


class ValidationError(ReproError, ValueError):
    """An input value (image, array, parameter) failed validation."""


class HazardError(ReproError, RuntimeError):
    """A same-phase read/write hazard was detected by the BDM simulator.

    The phase-based SPMD execution model requires that within one phase
    no processor reads a remote location that another processor wrote in
    the same phase (real machines would order these through the barrier
    that separates phases).  The simulator can check this discipline and
    raises this error on violation.
    """

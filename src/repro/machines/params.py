"""Per-platform parameter sets for the BDM cost model.

The Block Distributed Memory model charges a remote block access of
``b`` words as ``tau + b`` time units, where ``tau`` is the normalized
network latency; ``l`` pipelined prefetches issued together cost
``tau + l``.  To turn those abstract units into (simulated) seconds the
simulator needs, per machine,

* ``latency_s``      -- the latency ``tau`` in seconds,
* ``bandwidth_Bps``  -- sustained per-processor bandwidth in bytes/s
  (the paper reports attained transpose bandwidths: CM-5 7.62 MB/s,
  SP-2 24.8 MB/s, CS-2 10.7 MB/s, Paragon 88.6 MB/s),
* ``op_ns``          -- cost of one abstract local operation in ns.

``op_ns`` is *calibrated*, not derived: it is chosen so that the
flagship absolute numbers from the paper's Table 1 (histogramming of a
512x512, 256-level image) land close to the paper's measurements given
the operation counts our algorithms charge.  Absolute times are
therefore indicative; the *shapes* (scaling in ``n``, ``p``, ``k`` and
the machine ranking) come entirely from the model.

Throughout the paper ``MB/s`` means 1e6 bytes per second; we keep that
convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.utils.errors import ConfigurationError

#: Size of one BDM "word" in bytes (the paper sorts 32-bit keys).
WORD_BYTES = 4


@dataclass(frozen=True)
class MachineParams:
    """Cost-model parameters of one distributed-memory platform.

    Attributes
    ----------
    name:
        Human-readable platform name.
    latency_s:
        Normalized network latency ``tau`` in seconds charged once per
        (batch of pipelined) remote access(es).
    bandwidth_Bps:
        Sustained per-processor communication bandwidth, bytes/second.
    op_ns:
        Nanoseconds per abstract local operation (calibrated).
    barrier_s:
        Cost of one global barrier, seconds.  Barriers on these machines
        cost a small multiple of the network latency.
    copy_ns:
        Nanoseconds per word of *bulk local data placement* (the local
        rearrangement step of transpose/broadcast).  Defaults to 0: the
        per-processor bandwidths above are the *attained end-to-end*
        figures the paper reports, which already include local
        placement, so charging it again would double-count.  Set a
        positive value to model the copy separately.
    peak_bandwidth_Bps:
        Vendor peak per-processor bandwidth (for the bandwidth figures'
        reference lines); 0 when unknown.
    max_processors:
        Largest configuration used in the paper, for bookkeeping.
    """

    name: str
    latency_s: float
    bandwidth_Bps: float
    op_ns: float
    barrier_s: float = field(default=0.0)
    copy_ns: float = 0.0
    peak_bandwidth_Bps: float = 0.0
    max_processors: int = 128

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.bandwidth_Bps <= 0 or self.op_ns < 0:
            raise ConfigurationError(
                f"invalid machine parameters for {self.name!r}: "
                f"latency_s={self.latency_s}, bandwidth_Bps={self.bandwidth_Bps}, "
                f"op_ns={self.op_ns}"
            )
        if self.barrier_s == 0.0:
            # Default: a barrier costs about two network latencies.
            object.__setattr__(self, "barrier_s", 2.0 * self.latency_s)

    # -- conversions ----------------------------------------------------

    def word_time_s(self) -> float:
        """Seconds to move one word through a processor's network port."""
        return WORD_BYTES / self.bandwidth_Bps

    def comm_time_s(self, words: int, *, messages: int = 1) -> float:
        """Simulated seconds for ``messages`` pipelined remote accesses
        moving ``words`` words in total (BDM rule: ``tau + l`` for ``l``
        pipelined word-reads; block reads pay per word)."""
        if words < 0 or messages < 0:
            raise ConfigurationError("words and messages must be non-negative")
        if words == 0 and messages == 0:
            return 0.0
        return self.latency_s + words * self.word_time_s()

    def comp_time_s(self, ops: float) -> float:
        """Simulated seconds for ``ops`` abstract local operations."""
        if ops < 0:
            raise ConfigurationError("ops must be non-negative")
        return ops * self.op_ns * 1e-9

    def copy_time_s(self, words: float) -> float:
        """Simulated seconds for a bulk local placement of ``words`` words."""
        if words < 0:
            raise ConfigurationError("words must be non-negative")
        return words * self.copy_ns * 1e-9

    def with_(self, **kwargs) -> "MachineParams":
        """Return a copy with some fields replaced (for ablations)."""
        return replace(self, **kwargs)


# ---------------------------------------------------------------------------
# The five platforms of the paper.  Bandwidths are the *attained* per-
# processor transpose bandwidths reported in Section 2.2; latencies are
# representative one-way network latencies for these machines (the CM-5
# value follows the LogP characterization of Culler et al.); op_ns is
# calibrated against Table 1 (histogramming work per pixel: CM-5 732 ns,
# SP-1 562 ns, SP-2 1.22 us, Paragon 635 ns, CS-2 231 ns, at roughly two
# charged operations per pixel).
# ---------------------------------------------------------------------------

CM5 = MachineParams(
    name="TMC CM-5",
    latency_s=12e-6,
    bandwidth_Bps=7.62e6,
    op_ns=350.0,
    peak_bandwidth_Bps=12e6,
    max_processors=128,
)

SP1 = MachineParams(
    name="IBM SP-1",
    latency_s=56e-6,
    bandwidth_Bps=7.0e6,
    op_ns=270.0,
    peak_bandwidth_Bps=8.5e6,
    max_processors=128,
)

SP2 = MachineParams(
    name="IBM SP-2",
    latency_s=40e-6,
    bandwidth_Bps=24.8e6,
    op_ns=600.0,
    peak_bandwidth_Bps=40e6,
    max_processors=128,
)

CS2 = MachineParams(
    name="Meiko CS-2",
    latency_s=25e-6,
    bandwidth_Bps=10.7e6,
    op_ns=115.0,
    peak_bandwidth_Bps=50e6,
    max_processors=64,
)

PARAGON = MachineParams(
    name="Intel Paragon",
    latency_s=30e-6,
    bandwidth_Bps=88.6e6,
    op_ns=310.0,
    peak_bandwidth_Bps=175e6,
    max_processors=8,
)

#: A frictionless machine (zero latency, very high bandwidth, 1 ns/op);
#: useful in tests to reason about operation counts alone.
IDEAL = MachineParams(
    name="ideal",
    latency_s=0.0,
    bandwidth_Bps=1e12,
    op_ns=1.0,
    barrier_s=1e-12,
)

MACHINES = {
    "cm5": CM5,
    "sp1": SP1,
    "sp2": SP2,
    "cs2": CS2,
    "paragon": PARAGON,
    "ideal": IDEAL,
}


def get_machine(name: str) -> MachineParams:
    """Look up a machine parameter set by short name (case-insensitive).

    >>> get_machine("cm5").name
    'TMC CM-5'
    """
    key = name.strip().lower().replace("-", "").replace(" ", "")
    if key not in MACHINES:
        raise ConfigurationError(
            f"unknown machine {name!r}; known: {sorted(MACHINES)}"
        )
    return MACHINES[key]


def machine_from_dict(data: dict) -> MachineParams:
    """Build a custom machine from a plain dict (e.g. parsed JSON).

    Required keys: ``name``, ``latency_s``, ``bandwidth_Bps``,
    ``op_ns``; the remaining :class:`MachineParams` fields are optional.
    Unknown keys are rejected to catch typos.
    """
    if not isinstance(data, dict):
        raise ConfigurationError(f"machine spec must be a dict, got {type(data)!r}")
    allowed = {
        "name",
        "latency_s",
        "bandwidth_Bps",
        "op_ns",
        "barrier_s",
        "copy_ns",
        "peak_bandwidth_Bps",
        "max_processors",
    }
    unknown = set(data) - allowed
    if unknown:
        raise ConfigurationError(f"unknown machine spec keys: {sorted(unknown)}")
    missing = {"name", "latency_s", "bandwidth_Bps", "op_ns"} - set(data)
    if missing:
        raise ConfigurationError(f"machine spec missing keys: {sorted(missing)}")
    return MachineParams(**data)


def load_machine(spec: str) -> MachineParams:
    """Resolve a machine from a registry name or a JSON file path.

    ``spec`` ending in ``.json`` is read as a file containing a machine
    dict; anything else is looked up with :func:`get_machine`.
    """
    if spec.endswith(".json"):
        import json
        import pathlib

        try:
            data = json.loads(pathlib.Path(spec).read_text())
        except OSError as exc:
            raise ConfigurationError(f"cannot read machine spec {spec!r}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid JSON in {spec!r}: {exc}") from exc
        return machine_from_dict(data)
    return get_machine(spec)

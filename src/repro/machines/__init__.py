"""Machine models: per-platform communication and computation parameters.

The paper reports measured runs on five distributed-memory platforms
(TMC CM-5, IBM SP-1, IBM SP-2, Meiko CS-2, Intel Paragon).  This package
captures each platform as a :class:`~repro.machines.params.MachineParams`
instance that the BDM simulator uses to convert abstract communication
volumes and operation counts into simulated seconds.
"""

from repro.machines.params import (
    MachineParams,
    CM5,
    SP1,
    SP2,
    CS2,
    PARAGON,
    IDEAL,
    MACHINES,
    get_machine,
    machine_from_dict,
    load_machine,
)

__all__ = [
    "MachineParams",
    "CM5",
    "SP1",
    "SP2",
    "CS2",
    "PARAGON",
    "IDEAL",
    "MACHINES",
    "get_machine",
    "machine_from_dict",
    "load_machine",
]

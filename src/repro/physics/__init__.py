"""Computational-physics applications of connected components.

The paper motivates its CC primitive with "several computational
physics problems such as percolation and various cluster Monte Carlo
algorithms for computing the spin models of magnets such as the
two-dimensional Ising spin model" (Section 1).  This package makes
those applications first-class:

* :mod:`repro.physics.percolation` -- site percolation: spanning
  detection, cluster statistics, threshold estimation.
* :mod:`repro.physics.ising` -- the 2-D Ising model with Swendsen-Wang
  and Wolff cluster updates built on the bond labeler.
"""

from repro.physics.percolation import (
    PercolationStats,
    cluster_size_distribution,
    has_spanning_cluster,
    percolation_stats,
    spanning_probability,
)
from repro.physics.ising import (
    IsingModel,
    T_CRITICAL,
)
from repro.physics.stats import (
    autocorrelation,
    effective_samples,
    integrated_autocorrelation_time,
)

__all__ = [
    "PercolationStats",
    "cluster_size_distribution",
    "has_spanning_cluster",
    "percolation_stats",
    "spanning_probability",
    "IsingModel",
    "T_CRITICAL",
    "autocorrelation",
    "effective_samples",
    "integrated_autocorrelation_time",
]

"""Time-series statistics for Monte Carlo observables.

The headline quantity is the *integrated autocorrelation time*
``tau_int``: consecutive Markov chain samples are correlated, and the
effective number of independent samples in a run of length N is
``N / (2 tau_int)``.  Near the Ising critical point, local (Metropolis)
dynamics suffer critical slowing down -- ``tau_int`` grows as ``L^z``
with ``z ~ 2.17`` -- while the cluster algorithms built on connected
component labeling keep ``tau_int`` of order one.  That gap is the
quantitative reason the paper's physics citations need fast CC.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ValidationError


def autocorrelation(series: np.ndarray, max_lag: int | None = None) -> np.ndarray:
    """Normalized autocorrelation function ``rho[t]`` for t = 0..max_lag.

    ``rho[0] == 1``; computed directly (O(N * max_lag), fine for the
    series lengths Monte Carlo produces).
    """
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1 or series.size < 2:
        raise ValidationError("series must be 1-D with at least two samples")
    n = series.size
    if max_lag is None:
        max_lag = min(n - 1, n // 4)
    if not (0 <= max_lag < n):
        raise ValidationError(f"max_lag must be in [0, {n - 1}]")
    centered = series - series.mean()
    var = float(np.dot(centered, centered)) / n
    if var == 0:
        # A constant series is perfectly correlated at every lag.
        return np.ones(max_lag + 1)
    rho = np.empty(max_lag + 1)
    rho[0] = 1.0
    for lag in range(1, max_lag + 1):
        rho[lag] = float(np.dot(centered[:-lag], centered[lag:])) / (n * var)
    return rho


def integrated_autocorrelation_time(series: np.ndarray, *, c: float = 6.0) -> float:
    """Windowed estimator of ``tau_int`` (Sokal's automatic windowing).

    ``tau_int = 1/2 + sum_t rho(t)``, truncated at the first window
    ``W >= c * tau_int(W)`` -- the standard self-consistent cut that
    balances bias against noise.  Returns at least 0.5 (uncorrelated).
    """
    series = np.asarray(series, dtype=np.float64)
    if series.size < 8:
        raise ValidationError("need at least 8 samples to estimate tau_int")
    rho = autocorrelation(series)
    tau = 0.5
    for window in range(1, len(rho)):
        tau += float(rho[window])
        if window >= c * tau:
            break
    return max(tau, 0.5)


def effective_samples(series: np.ndarray) -> float:
    """Effective independent sample count ``N / (2 tau_int)``."""
    series = np.asarray(series, dtype=np.float64)
    return series.size / (2.0 * integrated_autocorrelation_time(series))

"""The 2-D Ising model with cluster Monte Carlo updates.

Spins live on an ``n x n`` square lattice (free boundaries) with
ferromagnetic coupling J = 1 and Hamiltonian
``H = -sum_<ij> s_i s_j``.  Two cluster update schemes, both built on
the library's bond-constrained component labeler:

* **Swendsen-Wang** -- activate bonds between equal spins with
  probability ``1 - exp(-2 beta)``, label all clusters at once
  (:func:`repro.baselines.bond_label.bond_label`), flip each with
  probability 1/2;
* **Wolff** -- grow one cluster from a random seed with the same bond
  probability and flip it outright.

Internally spins are stored as 1/2 (the labeler treats 0 as
background); :attr:`IsingModel.spins_pm` exposes the familiar +-1 view.
The exact critical temperature of the infinite lattice is
``T_c = 2 / ln(1 + sqrt 2) ~ 2.269``.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.bond_label import (
    bond_label,
    swendsen_wang_bonds,
    swendsen_wang_bonds_periodic,
    wolff_cluster,
)
from repro.utils.errors import ValidationError
from repro.utils.validation import check_positive

#: Exact critical temperature of the infinite 2-D Ising model (J = 1).
T_CRITICAL = 2.0 / np.log(1.0 + np.sqrt(2.0))


class IsingModel:
    """An ``n x n`` Ising configuration with cluster updates.

    Parameters
    ----------
    n:
        Lattice side.
    temperature:
        Temperature ``T`` (k_B = J = 1); ``beta = 1/T``.
    seed:
        RNG seed (the model owns its generator; runs are reproducible).
    hot_start:
        True (default): random initial spins; False: all spins up.
    periodic:
        Use periodic (torus) boundary conditions; free boundaries by
        default.  Periodic boundaries reduce finite-size effects near
        the critical point.
    """

    def __init__(
        self,
        n: int,
        temperature: float,
        *,
        seed: int = 0,
        hot_start: bool = True,
        periodic: bool = False,
    ):
        check_positive("n", n)
        if temperature <= 0:
            raise ValidationError(f"temperature must be positive, got {temperature}")
        self.n = n
        self.temperature = float(temperature)
        self.beta = 1.0 / self.temperature
        self.periodic = bool(periodic)
        self.rng = np.random.default_rng(seed)
        if hot_start:
            self.spins = self.rng.integers(1, 3, (n, n)).astype(np.int32)
        else:
            self.spins = np.ones((n, n), dtype=np.int32)

    # -- observables -------------------------------------------------------

    @property
    def spins_pm(self) -> np.ndarray:
        """The configuration as +-1 values."""
        return (self.spins * 2 - 3).astype(np.int32)

    def magnetization(self) -> float:
        """Absolute magnetization per site, ``|m|`` in [0, 1]."""
        return abs(float(self.spins_pm.mean()))

    def energy(self) -> float:
        """Energy per site, ``-sum_<ij> s_i s_j / n^2``."""
        s = self.spins_pm
        bonds = float((s[:, :-1] * s[:, 1:]).sum() + (s[:-1, :] * s[1:, :]).sum())
        if self.periodic:
            bonds += float((s[:, -1] * s[:, 0]).sum() + (s[-1, :] * s[0, :]).sum())
        return -bonds / self.spins.size

    def _neighbor_sum(self) -> np.ndarray:
        """Sum of the four neighbor spins (+-1) at every site."""
        s = self.spins_pm
        total = np.zeros_like(s)
        if self.periodic:
            for axis in (0, 1):
                total += np.roll(s, 1, axis=axis) + np.roll(s, -1, axis=axis)
        else:
            total[1:, :] += s[:-1, :]
            total[:-1, :] += s[1:, :]
            total[:, 1:] += s[:, :-1]
            total[:, :-1] += s[:, 1:]
        return total

    # -- updates -------------------------------------------------------------

    def sweep_swendsen_wang(self) -> int:
        """One SW update of the whole lattice; returns the cluster count."""
        if self.periodic:
            hb, vb, hw, vw = swendsen_wang_bonds_periodic(self.spins, self.beta, self.rng)
            labels = bond_label(self.spins, hb, vb, h_wrap=hw, v_wrap=vw)
        else:
            h_bonds, v_bonds = swendsen_wang_bonds(self.spins, self.beta, self.rng)
            labels = bond_label(self.spins, h_bonds, v_bonds)
        coins = self.rng.integers(0, 2, self.spins.size + 1).astype(bool)
        flip = coins[labels]
        self.spins = np.where(flip, 3 - self.spins, self.spins).astype(np.int32)
        return int(np.unique(labels[labels != 0]).size)

    def sweep_wolff(self) -> int:
        """One Wolff update (a single grown cluster); returns its size."""
        si = int(self.rng.integers(0, self.n))
        sj = int(self.rng.integers(0, self.n))
        mask = wolff_cluster(
            self.spins, (si, sj), self.beta, self.rng, periodic=self.periodic
        )
        self.spins = np.where(mask, 3 - self.spins, self.spins).astype(np.int32)
        return int(mask.sum())

    def sweep_metropolis(self) -> int:
        """One Metropolis sweep (two checkerboard half-updates).

        The classic local single-spin-flip dynamics -- the baseline the
        cluster algorithms were invented to beat: near ``T_c`` its
        autocorrelation time diverges (critical slowing down), while
        SW/Wolff decorrelate in a few sweeps.  Returns accepted flips.
        """
        n = self.n
        parity = (np.add.outer(np.arange(n), np.arange(n)) % 2).astype(bool)
        accepted = 0
        for color in (False, True):
            mask = parity == color
            s = self.spins_pm
            delta = 2.0 * s * self._neighbor_sum()  # energy change if flipped
            accept = mask & (
                (delta <= 0)
                | (self.rng.random((n, n)) < np.exp(-self.beta * np.maximum(delta, 0)))
            )
            self.spins = np.where(accept, 3 - self.spins, self.spins).astype(np.int32)
            accepted += int(accept.sum())
        return accepted

    def run(self, sweeps: int, *, method: str = "sw", burn_in: int | None = None) -> dict:
        """Run and measure: returns mean |m|, mean energy, and samples.

        ``method`` is ``"sw"`` or ``"wolff"``; ``burn_in`` defaults to
        a third of the sweeps.
        """
        if method == "sw":
            step = self.sweep_swendsen_wang
        elif method == "wolff":
            step = self.sweep_wolff
        elif method == "metropolis":
            step = self.sweep_metropolis
        else:
            raise ValidationError(
                f"unknown method {method!r} (sw, wolff or metropolis)"
            )
        check_positive("sweeps", sweeps)
        if burn_in is None:
            burn_in = sweeps // 3
        mags: list[float] = []
        energies: list[float] = []
        for sweep in range(sweeps):
            step()
            if sweep >= burn_in:
                mags.append(self.magnetization())
                energies.append(self.energy())
        m = np.asarray(mags)
        n_sites = self.spins.size
        if m.size:
            m2 = float(np.mean(m**2))
            m4 = float(np.mean(m**4))
            susceptibility = n_sites * self.beta * (m2 - float(np.mean(m)) ** 2)
            binder = 1.0 - m4 / (3.0 * m2 * m2) if m2 > 0 else float("nan")
        else:
            susceptibility = binder = float("nan")
        return {
            "magnetization": float(np.mean(mags)) if mags else float("nan"),
            "energy": float(np.mean(energies)) if energies else float("nan"),
            "susceptibility": susceptibility,
            "binder": binder,
            "samples": len(mags),
        }

"""Site percolation built on the component labeler.

Classic 2-D site percolation: occupy lattice sites independently with
probability ``p_occ``; a *spanning cluster* connects the top row to the
bottom row.  On the square lattice with 4-connectivity the spanning
probability jumps from 0 to 1 around the critical occupation
``p_c ~ 0.592746``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.run_label import run_label
from repro.images.greyscale import site_percolation
from repro.utils.errors import ValidationError

#: Literature value of the 2-D site percolation threshold (square
#: lattice, 4-connectivity).
P_CRITICAL = 0.592746


@dataclass
class PercolationStats:
    """Cluster statistics of one percolation configuration."""

    p_occ: float
    n_clusters: int
    largest_cluster: int
    mean_cluster: float
    spanning: bool
    total_sites: int = 0

    @property
    def largest_fraction(self) -> float:
        return self.largest_cluster / max(self.total_sites, 1)


def has_spanning_cluster(labels: np.ndarray, *, axis: int = 0) -> bool:
    """True if a cluster touches both opposite edges along ``axis``."""
    labels = np.asarray(labels)
    if labels.ndim != 2:
        raise ValidationError(f"labels must be 2-D, got shape {labels.shape}")
    if axis == 0:
        first, last = labels[0], labels[-1]
    elif axis == 1:
        first, last = labels[:, 0], labels[:, -1]
    else:
        raise ValidationError("axis must be 0 or 1")
    a = set(first[first != 0].tolist())
    b = set(last[last != 0].tolist())
    return bool(a & b)


def percolation_stats(
    lattice: np.ndarray, *, connectivity: int = 4
) -> PercolationStats:
    """Label a lattice's occupied clusters and summarize them."""
    lattice = np.asarray(lattice)
    labels = run_label(lattice, connectivity=connectivity)
    fg = labels[labels != 0]
    if fg.size:
        _, counts = np.unique(fg, return_counts=True)
        n_clusters = len(counts)
        largest = int(counts.max())
        mean = float(counts.mean())
    else:
        n_clusters, largest, mean = 0, 0, 0.0
    return PercolationStats(
        p_occ=float((lattice != 0).mean()),
        n_clusters=n_clusters,
        largest_cluster=largest,
        mean_cluster=mean,
        spanning=has_spanning_cluster(labels),
        total_sites=lattice.size,
    )


def cluster_size_distribution(labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Cluster size histogram: distinct sizes and their counts.

    At the percolation threshold the distribution follows the power law
    ``n_s ~ s^(-tau)`` with the 2-D Fisher exponent ``tau = 187/91 ~
    2.055``; away from it an exponential cutoff appears.
    """
    labels = np.asarray(labels)
    fg = labels[labels != 0]
    if fg.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    _, cluster_sizes = np.unique(fg, return_counts=True)
    sizes, counts = np.unique(cluster_sizes, return_counts=True)
    return sizes.astype(np.int64), counts.astype(np.int64)


def spanning_probability(
    n: int,
    p_occ: float,
    *,
    trials: int = 16,
    connectivity: int = 4,
    seed: int = 0,
) -> float:
    """Monte Carlo estimate of P(spanning cluster) at one occupation."""
    if trials <= 0:
        raise ValidationError("trials must be positive")
    hits = 0
    for trial in range(trials):
        lattice = site_percolation(n, p_occ, seed=seed * 10_007 + trial)
        labels = run_label(lattice, connectivity=connectivity)
        if has_spanning_cluster(labels):
            hits += 1
    return hits / trials

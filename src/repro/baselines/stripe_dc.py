"""Stripe-based divide & conquer CC: the Table-2 comparator, rebuilt.

Several Table 2 entries (Choudhary & Thakur 1992/1994, "multi-dim D+C
(partitioned input)") follow the straightforward divide-and-conquer
recipe the paper improves upon: partition the image into ``p``
horizontal stripes, label each stripe sequentially, then merge pairwise
up a binary tree -- and after every merge *eagerly relabel all pixels*
of the merged region (no tile hooks, no limited updating; the merge
manager also serves the change list to every stripe of its region).

Implementing it on the same BDM machine lets the benchmark reproduce
the paper-vs-baseline comparison computationally instead of quoting the
published numbers: the paper's algorithm wins because (a) its 2-D tiles
have ``O(n/sqrt(p))`` borders instead of ``O(n)``, and (b) it defers
interior relabeling to a single final pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.sequential import ENGINES
from repro.bdm.cost import MachineReport
from repro.bdm.machine import Machine
from repro.bdm.memory import GlobalArray
from repro.core.border_graph import BorderSide, solve_border_merge
from repro.core.change_array import apply_changes
from repro.core.costs import CostParams, DEFAULT_COSTS
from repro.machines.params import MachineParams, IDEAL
from repro.sorting.hybrid import hybrid_sort_ops
from repro.utils.errors import ConfigurationError, ValidationError
from repro.utils.validation import check_image, check_power_of_two, ilog2


@dataclass
class StripeResult:
    """Output of :func:`stripe_components`."""

    labels: np.ndarray
    report: MachineReport
    n_components: int

    @property
    def elapsed_s(self) -> float:
        return self.report.elapsed_s


def stripe_components(
    image: np.ndarray,
    p: int,
    machine_params: MachineParams = IDEAL,
    *,
    connectivity: int = 8,
    grey: bool = False,
    engine: str = "runs",
    costs: CostParams = DEFAULT_COSTS,
    check_hazards: bool = True,
) -> StripeResult:
    """Label components with the stripe divide-&-conquer baseline.

    Output is identical to :func:`repro.parallel_components` (and the
    sequential engines); only the simulated cost differs.
    """
    image = check_image(image, square=False)
    check_power_of_two("p", p)
    if engine not in ENGINES:
        raise ValidationError(f"unknown engine {engine!r}; known: {sorted(ENGINES)}")
    n_rows, n = image.shape  # n = columns = the label stride
    if n_rows % p != 0:
        raise ConfigurationError(f"p={p} must divide the image rows {n_rows}")
    label_fn = ENGINES[engine]
    rows_per = n_rows // p

    machine = Machine(p, machine_params, check_hazards=check_hazards)
    stripes = [image[pid * rows_per : (pid + 1) * rows_per] for pid in range(p)]

    colors = GlobalArray(machine, rows_per * n, dtype=np.int64, name="scolors")
    labels = GlobalArray(machine, rows_per * n, dtype=np.int64, name="slabels")
    for pid in range(p):
        colors.place(pid, stripes[pid])  # initial placement

    stripe_pixels = rows_per * n
    with machine.phase("sdc:label"):
        for proc in machine.procs:
            lab = label_fn(
                stripes[proc.pid],
                connectivity=connectivity,
                grey=grey,
                label_base=1,
                label_stride=n,
                row_offset=proc.pid * rows_per,
                col_offset=0,
            )
            labels.write(proc, proc.pid, lab.ravel())
            proc.charge_comp(costs.label_per_pixel(grey) * stripe_pixels)

    bottom = np.arange(n, dtype=np.int64) + (rows_per - 1) * n  # last stripe row
    top = np.arange(n, dtype=np.int64)  # first stripe row

    for t in range(1, ilog2(p) + 1 if p > 1 else 1):
        if p == 1:
            break
        span = 1 << t  # stripes per merged region after this round
        # --- managers fetch the facing border rows and solve.
        solves = {}
        with machine.phase(f"sdc:m{t}:fetch-solve"):
            for m0 in range(0, p, span):
                upper_pid = m0 + span // 2 - 1  # stripe above the seam
                lower_pid = m0 + span // 2
                mgr = machine.procs[m0]
                with mgr.prefetch_batch():
                    up = BorderSide(
                        labels.read_indices(mgr, upper_pid, bottom),
                        colors.read_indices(mgr, upper_pid, bottom),
                    )
                    down = BorderSide(
                        labels.read_indices(mgr, lower_pid, top),
                        colors.read_indices(mgr, lower_pid, top),
                    )
                mgr.charge_comp(2 * hybrid_sort_ops(n))
                solve = solve_border_merge(
                    up, down, connectivity=connectivity, grey=grey
                )
                solves[m0] = solve.changes
                mgr.charge_comp(
                    costs.graph_build_per_vertex * solve.n_vertices
                    + costs.graph_cc_per_vertex * solve.n_vertices
                    + costs.change_per_entry * len(solve.changes)
                    + hybrid_sort_ops(len(solve.changes))
                )

        # --- every stripe of the region fetches the list and fully
        # relabels (the eager scheme the paper replaces).
        with machine.phase(f"sdc:m{t}:update"):
            for m0 in range(0, p, span):
                ch = solves[m0]
                if len(ch) == 0:
                    continue
                ch_words = 1 + 2 * len(ch)
                for pid in range(m0, m0 + span):
                    proc = machine.procs[pid]
                    if pid != m0:
                        machine.transfer(m0, pid, ch_words)
                    cur = labels.read(proc, pid)
                    labels.write(proc, pid, apply_changes(cur, ch))
                    proc.charge_comp(
                        costs.binary_search_ops(stripe_pixels, len(ch))
                    )

    full = np.vstack(
        [labels.local(pid).reshape(rows_per, n) for pid in range(p)]
    ).astype(np.int64)
    n_components = int(np.unique(full[full != 0]).size)
    return StripeResult(labels=full, report=machine.report(), n_components=n_components)

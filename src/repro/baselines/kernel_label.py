"""Kernel-dispatched connected component labeling engine.

``kernel_label`` is the registry-backed fifth engine: it forwards to
whichever ``tile_label`` kernel backend is selected (explicitly, via
``REPRO_KERNEL_BACKEND``, or the numpy default) and therefore produces
the shared label convention -- ``label_base + (row_offset + i) * stride
+ (col_offset + j)`` of the component's first pixel -- bit-identically
to :func:`~repro.baselines.bfs_label.bfs_label` and friends.

Registered in :data:`repro.baselines.sequential.ENGINES` under the key
``"kernel"``, so ``sequential_components(..., engine="kernel")`` and
``parallel_components(..., engine="kernel")`` pick it up directly.
"""

from __future__ import annotations

import numpy as np


def kernel_label(
    image: np.ndarray,
    *,
    connectivity: int = 8,
    grey: bool = False,
    label_base: int = 1,
    label_stride: int | None = None,
    row_offset: int = 0,
    col_offset: int = 0,
    backend: str | None = None,
) -> np.ndarray:
    """Label connected components through the kernel registry.

    Same signature and output as
    :func:`~repro.baselines.bfs_label.bfs_label`, plus ``backend`` to
    pin the kernel backend (``"python"`` or ``"numpy"``; ``None``
    resolves the environment/default).
    """
    # Imported lazily: repro.kernels pulls in repro.baselines for the
    # python reference backend, so a module-level import would cycle.
    from repro import kernels

    fn = kernels.get("tile_label", backend=backend)
    return fn(
        image,
        connectivity=connectivity,
        grey=grey,
        label_base=label_base,
        label_stride=label_stride,
        row_offset=row_offset,
        col_offset=col_offset,
    )

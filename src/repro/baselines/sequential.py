"""Sequential reference algorithms and the engine registry.

``sequential_components`` is the single-processor counterpart of the
parallel algorithm -- the denominator of the paper's efficiency metric
("an algorithm with efficiency near one runs approximately p times
faster on p processors than ... on a single processor").
"""

from __future__ import annotations

import numpy as np

from repro.baselines.bfs_label import bfs_label
from repro.baselines.kernel_label import kernel_label
from repro.baselines.run_label import run_label
from repro.baselines.shiloach_vishkin import shiloach_vishkin_image
from repro.baselines.two_pass import two_pass_label
from repro.utils.errors import ValidationError
from repro.utils.validation import check_image, check_power_of_two

#: Interchangeable labeling engines (identical outputs).  ``"kernel"``
#: dispatches through the :mod:`repro.kernels` registry (backend from
#: ``REPRO_KERNEL_BACKEND`` or the numpy default).
ENGINES = {
    "bfs": bfs_label,
    "kernel": kernel_label,
    "runs": run_label,
    "sv": shiloach_vishkin_image,
    "twopass": two_pass_label,
}


def sequential_histogram(image: np.ndarray, k: int) -> np.ndarray:
    """Histogram ``H[0..k-1]`` of the image (vectorized tally).

    ``H[i]`` counts the pixels with grey level ``i``; the paper's
    correctness criterion ``sum(H) == n^2`` holds by construction.
    """
    image = check_image(image, square=False)
    check_power_of_two("k", k)
    if image.max(initial=0) >= k:
        raise ValidationError(f"image has grey levels >= k={k}")
    return np.bincount(image.ravel(), minlength=k).astype(np.int64)


def sequential_histogram_loop(image: np.ndarray, k: int) -> np.ndarray:
    """Pure-Python tally loop (reference for the vectorized version)."""
    image = check_image(image, square=False)
    check_power_of_two("k", k)
    hist = np.zeros(k, dtype=np.int64)
    for value in image.ravel().tolist():
        if value >= k:
            raise ValidationError(f"grey level {value} >= k={k}")
        hist[value] += 1
    return hist


def sequential_components(
    image: np.ndarray,
    *,
    connectivity: int = 8,
    grey: bool = False,
    engine: str = "runs",
) -> np.ndarray:
    """Label connected components with the selected sequential engine.

    All engines produce identical labels: a component is labeled with
    the 1-based row-major index of its first pixel, background is 0.
    """
    if engine not in ENGINES:
        raise ValidationError(f"unknown engine {engine!r}; known: {sorted(ENGINES)}")
    return ENGINES[engine](image, connectivity=connectivity, grey=grey)


def count_components(labels: np.ndarray) -> int:
    """Number of distinct non-background labels in a label image."""
    labels = np.asarray(labels)
    nonzero = labels[labels != 0]
    return int(np.unique(nonzero).size)

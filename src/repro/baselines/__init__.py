"""Sequential engines and literature baselines.

The parallel algorithm needs a "standard sequential algorithm" for the
per-tile initialization (the paper uses breadth-first search) and for
the border graphs.  We provide three interchangeable engines plus the
Shiloach-Vishkin algorithm (the classic PRAM baseline several entries
of the paper's Table 2 implement):

* :func:`~repro.baselines.bfs_label.bfs_label` -- row-major BFS,
  exactly the paper's Section 5.1 procedure;
* :func:`~repro.baselines.run_label.run_label` -- run-length two-pass
  union-find, a vectorized engine producing identical labels;
* :func:`~repro.baselines.shiloach_vishkin.shiloach_vishkin_image` --
  hook-and-shortcut CC, vectorized;
* :func:`~repro.baselines.kernel_label.kernel_label` -- dispatches
  through the :mod:`repro.kernels` registry (``python`` reference or
  vectorized ``numpy`` backend, selectable per call or via
  ``REPRO_KERNEL_BACKEND``).

All engines share one labeling convention: a component's label is
``1 + min(row * n_cols + col)`` over its pixels (the row-major BFS seed
label), and background pixels get 0 -- so outputs are bit-identical
across engines and match the parallel algorithm's final labels.
"""

from repro.baselines.union_find import UnionFind
from repro.baselines.bfs_label import bfs_label
from repro.baselines.kernel_label import kernel_label
from repro.baselines.run_label import run_label, extract_runs
from repro.baselines.shiloach_vishkin import (
    shiloach_vishkin,
    shiloach_vishkin_image,
)
from repro.baselines.two_pass import two_pass_label
from repro.baselines.bond_label import bond_label, bond_label_bfs, swendsen_wang_bonds, wolff_cluster
from repro.baselines.stripe_dc import stripe_components, StripeResult
from repro.baselines.sequential import (
    sequential_histogram,
    sequential_histogram_loop,
    sequential_components,
    count_components,
    ENGINES,
)

__all__ = [
    "UnionFind",
    "bfs_label",
    "kernel_label",
    "run_label",
    "extract_runs",
    "shiloach_vishkin",
    "shiloach_vishkin_image",
    "two_pass_label",
    "bond_label",
    "bond_label_bfs",
    "swendsen_wang_bonds",
    "wolff_cluster",
    "stripe_components",
    "StripeResult",
    "sequential_histogram",
    "sequential_histogram_loop",
    "sequential_components",
    "count_components",
    "ENGINES",
]

"""Shiloach-Vishkin connected components (vectorized hook + shortcut).

The classic PRAM CC algorithm -- the baseline behind several Table 2
entries of the paper (e.g. Hummel's NYU Ultracomputer implementation is
annotated "Shiloach/Vishkin alg.").  Each iteration hooks tree roots
onto smaller-indexed neighbors and halves tree heights by pointer
jumping; it converges in ``O(log V)`` iterations, each a constant
number of vectorized passes over the edge list.

We keep the "hook to the *smaller* endpoint" orientation so that the
final representative of every component is its minimum vertex index --
the same convention the other engines use.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ValidationError
from repro.utils.validation import check_image


def shiloach_vishkin(n_vertices: int, edges_u: np.ndarray, edges_v: np.ndarray) -> np.ndarray:
    """Component representative (minimum vertex index) of every vertex.

    Parameters
    ----------
    n_vertices:
        Number of vertices ``0 .. n_vertices - 1``.
    edges_u, edges_v:
        Endpoint arrays of the (undirected) edge list.
    """
    if n_vertices < 0:
        raise ValidationError("n_vertices must be non-negative")
    u = np.asarray(edges_u, dtype=np.int64)
    v = np.asarray(edges_v, dtype=np.int64)
    if u.shape != v.shape:
        raise ValidationError("edge endpoint arrays must have equal shape")
    if u.size and (u.min() < 0 or v.min() < 0 or u.max() >= n_vertices or v.max() >= n_vertices):
        raise ValidationError("edge endpoints out of range")

    parent = np.arange(n_vertices, dtype=np.int64)
    if u.size == 0:
        return parent

    while True:
        pu = parent[u]
        pv = parent[v]
        # Hook: for an edge whose endpoints have different parents, point
        # the larger parent at the smaller one.  np.minimum.at resolves
        # conflicting hooks of one round to the smallest candidate.
        hi = np.maximum(pu, pv)
        lo = np.minimum(pu, pv)
        mask = hi != lo
        if not mask.any():
            break
        np.minimum.at(parent, hi[mask], lo[mask])
        # Shortcut: pointer jumping until the forest is flat.
        while True:
            grand = parent[parent]
            if np.array_equal(grand, parent):
                break
            parent = grand
    return parent


def shiloach_vishkin_image(
    image: np.ndarray,
    *,
    connectivity: int = 8,
    grey: bool = False,
    label_base: int = 1,
    label_stride: int | None = None,
    row_offset: int = 0,
    col_offset: int = 0,
) -> np.ndarray:
    """Label an image's components with SV; same output as ``bfs_label``."""
    image = check_image(image, square=False)
    rows, cols = image.shape
    stride = cols if label_stride is None else int(label_stride)

    fg = image != 0
    idx = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)

    if connectivity == 8:
        shifts = ((0, 1), (1, 0), (1, 1), (1, -1))
    elif connectivity == 4:
        shifts = ((0, 1), (1, 0))
    else:
        raise ValidationError(f"connectivity must be 4 or 8, got {connectivity}")

    us: list[np.ndarray] = []
    vs: list[np.ndarray] = []
    for di, dj in shifts:
        src_i = slice(0, rows - di)
        dst_i = slice(di, rows)
        if dj >= 0:
            src_j = slice(0, cols - dj)
            dst_j = slice(dj, cols)
        else:
            src_j = slice(-dj, cols)
            dst_j = slice(0, cols + dj)
        connect = fg[src_i, src_j] & fg[dst_i, dst_j]
        if grey:
            connect &= image[src_i, src_j] == image[dst_i, dst_j]
        us.append(idx[src_i, src_j][connect])
        vs.append(idx[dst_i, dst_j][connect])

    u = np.concatenate(us) if us else np.empty(0, dtype=np.int64)
    v = np.concatenate(vs) if vs else np.empty(0, dtype=np.int64)
    parent = shiloach_vishkin(rows * cols, u, v)

    flat_fg = fg.ravel()
    roots = parent[np.arange(rows * cols)]
    seed_i = roots // cols
    seed_j = roots % cols
    flat_labels = label_base + (row_offset + seed_i) * stride + (col_offset + seed_j)
    labels = np.where(flat_fg, flat_labels, 0).reshape(rows, cols)
    return labels.astype(np.int64)

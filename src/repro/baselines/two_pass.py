"""Classic two-pass (raster scan + union-find) component labeling.

The Rosenfeld-Pfaltz style labeler that most sequential vision systems
of the paper's era used: a first raster pass assigns provisional labels
and records equivalences between neighboring labels; a second pass
resolves every pixel through the equivalence forest.  Included as a
fourth interchangeable engine -- historically *the* standard sequential
algorithm, and a useful differential-testing partner for the BFS and
run-length engines.

Output follows the shared convention (component label = 1 + row-major
index of its first pixel): provisional labels are created in raster
order, the union-find keeps minimum representatives, and the minimum
provisional label of a component belongs to its first-scanned pixel.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.union_find import UnionFind
from repro.utils.errors import ValidationError
from repro.utils.validation import check_image


def two_pass_label(
    image: np.ndarray,
    *,
    connectivity: int = 8,
    grey: bool = False,
    label_base: int = 1,
    label_stride: int | None = None,
    row_offset: int = 0,
    col_offset: int = 0,
) -> np.ndarray:
    """Label components with the two-pass algorithm; same output as
    :func:`repro.baselines.bfs_label.bfs_label`."""
    image = check_image(image, square=False)
    if connectivity == 8:
        back_nbrs = ((-1, -1), (-1, 0), (-1, 1), (0, -1))
    elif connectivity == 4:
        back_nbrs = ((-1, 0), (0, -1))
    else:
        raise ValidationError(f"connectivity must be 4 or 8, got {connectivity}")

    rows, cols = image.shape
    stride = cols if label_stride is None else int(label_stride)
    provisional = np.full((rows, cols), -1, dtype=np.int64)
    seeds: list[int] = []  # flat pixel index that created each provisional label
    parents: list[int] = []

    # Pass 1: provisional labels + equivalences.
    img = image
    for i in range(rows):
        for j in range(cols):
            color = img[i, j]
            if color == 0:
                continue
            best = -1
            for di, dj in back_nbrs:
                ni, nj = i + di, j + dj
                if ni < 0 or nj < 0 or nj >= cols:
                    continue
                if img[ni, nj] == 0 or (grey and img[ni, nj] != color):
                    continue
                lbl = provisional[ni, nj]
                if lbl >= 0:
                    best = lbl if best < 0 else min(best, lbl)
            if best < 0:
                new = len(seeds)
                seeds.append(i * cols + j)
                parents.append(new)
                provisional[i, j] = new
            else:
                provisional[i, j] = best
            # Record equivalences among all matching back-neighbors.
            cur = provisional[i, j]
            for di, dj in back_nbrs:
                ni, nj = i + di, j + dj
                if ni < 0 or nj < 0 or nj >= cols:
                    continue
                if img[ni, nj] == 0 or (grey and img[ni, nj] != color):
                    continue
                other = provisional[ni, nj]
                if other >= 0 and other != cur:
                    _union(parents, cur, other)

    if not seeds:
        return np.zeros((rows, cols), dtype=np.int64)

    # Pass 2: resolve each provisional label to its component's root, and
    # the root to the final pixel-index label.
    uf = UnionFind(len(parents))
    uf.parent = np.asarray(parents, dtype=np.int64)
    roots = uf.roots()
    seed_arr = np.asarray(seeds, dtype=np.int64)
    final_of_prov = (
        label_base
        + (row_offset + seed_arr[roots] // cols) * stride
        + (col_offset + seed_arr[roots] % cols)
    )
    out = np.zeros((rows, cols), dtype=np.int64)
    fg = provisional >= 0
    out[fg] = final_of_prov[provisional[fg]]
    return out


def _union(parents: list[int], a: int, b: int) -> None:
    """Union with path compression over a plain list (pass-1 helper)."""
    ra = a
    while parents[ra] != ra:
        parents[ra] = parents[parents[ra]]
        ra = parents[ra]
    rb = b
    while parents[rb] != rb:
        parents[rb] = parents[parents[rb]]
        rb = parents[rb]
    if ra == rb:
        return
    if rb < ra:
        ra, rb = rb, ra
    parents[rb] = ra

"""Array-based union-find (disjoint set forest).

Used by the run-length labeling engine and by the border-graph solver.
Union by smaller *root index* (not by rank): the algorithms in this
package rely on the invariant that a set's representative is its
minimum member, which makes the final component label (the minimum
row-major pixel index) fall out of the structure directly.  Find uses
path halving, so the amortized cost stays near-constant in practice.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ValidationError


class UnionFind:
    """Disjoint sets over ``0 .. n-1`` with minimum-root representatives."""

    def __init__(self, n: int):
        if n < 0:
            raise ValidationError(f"n must be non-negative, got {n}")
        self.parent = np.arange(n, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.parent)

    def find(self, x: int) -> int:
        """Representative (minimum member) of ``x``'s set, with path halving."""
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return int(x)

    def union(self, a: int, b: int) -> int:
        """Merge the sets of ``a`` and ``b``; returns the new root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if rb < ra:
            ra, rb = rb, ra
        self.parent[rb] = ra
        return ra

    def union_edges(self, a: np.ndarray, b: np.ndarray) -> None:
        """Union each pair ``(a[i], b[i])``; pairs are processed in order."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        if a.shape != b.shape:
            raise ValidationError("edge endpoint arrays must have equal shape")
        for x, y in zip(a.tolist(), b.tolist()):
            self.union(x, y)

    def roots(self) -> np.ndarray:
        """Fully-compressed root of every element (vectorized pointer jumping)."""
        parent = self.parent.copy()
        while True:
            grand = parent[parent]
            if np.array_equal(grand, parent):
                break
            parent = grand
        self.parent = parent  # keep the compression
        return parent.copy()

    def n_sets(self) -> int:
        """Number of disjoint sets."""
        roots = self.roots()
        return int(np.unique(roots).size)

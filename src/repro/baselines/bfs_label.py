"""Row-major breadth-first-search connected component labeling.

This is precisely the paper's Section 5.1 initialization procedure:
pixels are examined in row-major order; an unmarked foreground pixel
seeds a BFS that labels all connected like-colored pixels with the
seed's label.  Binary images connect all non-zero pixels; grey-scale
images connect only *equal* non-zero levels (Section 6).  Runs in
``O(|V| + |E|)``.

The label of a component is ``label_base + seed_row * label_stride +
seed_col`` -- with the defaults (``label_stride = n_cols``,
``label_base = 1``) that is the 1-based row-major index of the seed.
The parallel algorithm labels tiles with global coordinates by passing
the tile's global offsets (Section 5.1's ``(Iq + i) n + (Jr + j) + 1``
labeling).

This reference engine is pure Python per pixel; use
:func:`repro.baselines.run_label.run_label` (identical output) when
speed matters.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.utils.errors import ValidationError
from repro.utils.validation import check_image

#: Neighbor offsets by connectivity.
NEIGHBORS_4 = ((-1, 0), (0, -1), (0, 1), (1, 0))
NEIGHBORS_8 = (
    (-1, -1), (-1, 0), (-1, 1),
    (0, -1), (0, 1),
    (1, -1), (1, 0), (1, 1),
)


def _neighbors(connectivity: int):
    if connectivity == 4:
        return NEIGHBORS_4
    if connectivity == 8:
        return NEIGHBORS_8
    raise ValidationError(f"connectivity must be 4 or 8, got {connectivity}")


def bfs_label(
    image: np.ndarray,
    *,
    connectivity: int = 8,
    grey: bool = False,
    label_base: int = 1,
    label_stride: int | None = None,
    row_offset: int = 0,
    col_offset: int = 0,
) -> np.ndarray:
    """Label connected components by row-major BFS.

    Parameters
    ----------
    image:
        2-D integer array; 0 is background.
    connectivity:
        4 or 8 (the paper supports both).
    grey:
        If True, only equal non-zero levels connect (grey-scale CC);
        if False, any two non-zero pixels may connect (binary CC).
    label_base, label_stride, row_offset, col_offset:
        A pixel at local ``(i, j)`` contributes the candidate label
        ``label_base + (row_offset + i) * stride + (col_offset + j)``
        where ``stride`` defaults to the image's column count.  The
        component's label is its seed's candidate label, which equals
        the minimum candidate over the component.

    Returns
    -------
    numpy.ndarray
        int64 label image; background pixels are 0.
    """
    image = check_image(image, square=False)
    nbrs = _neighbors(connectivity)
    rows, cols = image.shape
    stride = cols if label_stride is None else int(label_stride)
    labels = np.zeros((rows, cols), dtype=np.int64)
    img = image  # local alias for speed

    for si in range(rows):
        for sj in range(cols):
            if img[si, sj] == 0 or labels[si, sj] != 0:
                continue
            color = img[si, sj]
            label = label_base + (row_offset + si) * stride + (col_offset + sj)
            if label == 0:
                # 0 is the background sentinel; a zero component label
                # would defeat the visited check and loop forever.
                raise ValidationError(
                    f"seed ({si},{sj}) gets label 0 (the background "
                    "sentinel); use label_base/offsets that keep "
                    "foreground labels non-zero"
                )
            labels[si, sj] = label
            queue = deque([(si, sj)])
            while queue:
                ci, cj = queue.popleft()
                for di, dj in nbrs:
                    ni, nj = ci + di, cj + dj
                    if ni < 0 or nj < 0 or ni >= rows or nj >= cols:
                        continue
                    if labels[ni, nj] != 0 or img[ni, nj] == 0:
                        continue
                    if grey and img[ni, nj] != color:
                        continue
                    labels[ni, nj] = label
                    queue.append((ni, nj))
    return labels

"""Run-length connected component labeling (vectorized engine).

Each image row is compressed into maximal horizontal *runs* of
foreground (binary) or of one constant non-zero level (grey-scale).
Runs in adjacent rows are unioned when they touch (with one pixel of
horizontal dilation under 8-connectivity), using
:class:`~repro.baselines.union_find.UnionFind` whose representatives
are set minima.  A final vectorized paint assigns every pixel its
component's label: ``label_base + (row_offset + i) * stride +
(col_offset + j)`` of the component's first pixel in row-major order --
exactly the label :func:`~repro.baselines.bfs_label.bfs_label` produces.

Run extraction, pair discovery (two ``searchsorted`` calls per row) and
painting are all NumPy-vectorized; only the union sequence itself is a
Python loop over O(#runs) pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.union_find import UnionFind
from repro.utils.errors import ValidationError
from repro.utils.validation import check_image


@dataclass
class Runs:
    """Maximal horizontal runs of an image, in row-major order.

    ``stop`` is exclusive; ``color`` is the run's grey level (any
    non-zero value for binary runs that span several levels).
    """

    row: np.ndarray
    start: np.ndarray
    stop: np.ndarray
    color: np.ndarray
    shape: tuple[int, int]

    def __len__(self) -> int:
        return len(self.row)


def extract_runs(image: np.ndarray, *, grey: bool = False) -> Runs:
    """Extract maximal horizontal runs (foreground or constant-level)."""
    image = check_image(image, square=False)
    rows, cols = image.shape
    fg = image != 0
    if grey:
        start_mask = fg.copy()
        start_mask[:, 1:] = fg[:, 1:] & (image[:, 1:] != image[:, :-1])
        end_mask = fg.copy()
        end_mask[:, :-1] = fg[:, :-1] & (image[:, :-1] != image[:, 1:])
    else:
        start_mask = fg.copy()
        start_mask[:, 1:] = fg[:, 1:] & ~fg[:, :-1]
        end_mask = fg.copy()
        end_mask[:, :-1] = fg[:, :-1] & ~fg[:, 1:]
    starts = np.flatnonzero(start_mask.ravel())
    ends = np.flatnonzero(end_mask.ravel())
    return Runs(
        row=starts // cols,
        start=starts % cols,
        stop=ends % cols + 1,
        color=image.ravel()[starts],
        shape=(rows, cols),
    )


def _adjacent_run_pairs(runs: Runs, connectivity: int, grey: bool) -> tuple[np.ndarray, np.ndarray]:
    """Indices ``(a, b)`` of touching runs in consecutive rows.

    For every run ``b`` in row ``r`` the touching runs ``a`` in row
    ``r - 1`` form a contiguous range of the (column-sorted) runs of
    that row, located with two binary searches.
    """
    if connectivity == 8:
        dilate = 1
    elif connectivity == 4:
        dilate = 0
    else:
        raise ValidationError(f"connectivity must be 4 or 8, got {connectivity}")

    n_rows = runs.shape[0]
    row_ptr = np.searchsorted(runs.row, np.arange(n_rows + 1))
    a_out: list[np.ndarray] = []
    b_out: list[np.ndarray] = []
    for r in range(1, n_rows):
        a0, a1 = int(row_ptr[r - 1]), int(row_ptr[r])
        b0, b1 = int(row_ptr[r]), int(row_ptr[r + 1])
        if a0 == a1 or b0 == b1:
            continue
        sa = runs.start[a0:a1]
        ea = runs.stop[a0:a1]  # exclusive
        sb = runs.start[b0:b1]
        eb = runs.stop[b0:b1]
        # run a touches run b iff  sa <= eb - 1 + dilate  and  ea - 1 >= sb - dilate
        lo = np.searchsorted(ea, sb - dilate, side="right")
        # ea is exclusive: a qualifies iff ea > sb - dilate, i.e. index of
        # first a with ea > sb - dilate == searchsorted(ea, sb - dilate, "right")
        hi = np.searchsorted(sa, eb + dilate, side="left")
        # a qualifies iff sa < eb + dilate
        counts = np.maximum(hi - lo, 0)
        total = int(counts.sum())
        if total == 0:
            continue
        excl = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(counts, out=excl[1:])
        a_local = np.arange(total, dtype=np.int64) - np.repeat(excl[:-1], counts) + np.repeat(lo, counts)
        b_local = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
        a_idx = a_local + a0
        b_idx = b_local + b0
        if grey:
            same = runs.color[a_idx] == runs.color[b_idx]
            a_idx = a_idx[same]
            b_idx = b_idx[same]
        if a_idx.size:
            a_out.append(a_idx)
            b_out.append(b_idx)
    if not a_out:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(a_out), np.concatenate(b_out)


def run_label(
    image: np.ndarray,
    *,
    connectivity: int = 8,
    grey: bool = False,
    label_base: int = 1,
    label_stride: int | None = None,
    row_offset: int = 0,
    col_offset: int = 0,
) -> np.ndarray:
    """Label connected components; same signature/output as ``bfs_label``."""
    image = check_image(image, square=False)
    rows, cols = image.shape
    stride = cols if label_stride is None else int(label_stride)
    labels = np.zeros((rows, cols), dtype=np.int64)

    runs = extract_runs(image, grey=grey)
    if len(runs) == 0:
        return labels

    a_idx, b_idx = _adjacent_run_pairs(runs, connectivity, grey)
    uf = UnionFind(len(runs))
    uf.union_edges(a_idx, b_idx)
    roots = uf.roots()

    # The component label comes from the component's first run in
    # row-major order.  Runs are emitted in row-major order and the
    # union-find keeps minimum-index representatives, so the root run
    # *is* the first run, and its start pixel is the seed pixel.
    seed_row = runs.row[roots]
    seed_col = runs.start[roots]
    run_labels = label_base + (row_offset + seed_row) * stride + (col_offset + seed_col)

    # Vectorized paint of all runs.
    lengths = runs.stop - runs.start
    total = int(lengths.sum())
    flat_starts = runs.row * cols + runs.start
    excl = np.zeros(len(runs) + 1, dtype=np.int64)
    np.cumsum(lengths, out=excl[1:])
    pix = (
        np.arange(total, dtype=np.int64)
        - np.repeat(excl[:-1], lengths)
        + np.repeat(flat_starts, lengths)
    )
    labels.ravel()[pix] = np.repeat(run_labels, lengths)
    return labels

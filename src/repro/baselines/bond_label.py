"""Bond-constrained component labeling (cluster Monte Carlo support).

The paper cites percolation and "various cluster Monte Carlo algorithms
for computing the spin models of magnets such as the two-dimensional
Ising spin model" as applications of image connected components.  Those
algorithms (Swendsen-Wang, Wolff) label clusters of *bond*-connected
sites: two adjacent like-spin sites belong to one cluster only if the
randomly activated bond between them is present.

This module labels components under explicit bond masks on the 4-
neighbor lattice.  The production path is the vectorized hook-and-
shortcut (Shiloach-Vishkin) solver; a pure-Python BFS reference backs
the tests.  Labels follow the library convention: 0 background,
``1 + min(row * cols + col)`` per cluster.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.baselines.shiloach_vishkin import shiloach_vishkin
from repro.utils.errors import ValidationError
from repro.utils.validation import check_image


def _check_bonds(image: np.ndarray, h_bonds: np.ndarray, v_bonds: np.ndarray):
    rows, cols = image.shape
    h_bonds = np.asarray(h_bonds, dtype=bool)
    v_bonds = np.asarray(v_bonds, dtype=bool)
    if h_bonds.shape != (rows, cols - 1) and not (cols == 1 and h_bonds.size == 0):
        raise ValidationError(
            f"h_bonds must have shape {(rows, cols - 1)}, got {h_bonds.shape}"
        )
    if v_bonds.shape != (rows - 1, cols) and not (rows == 1 and v_bonds.size == 0):
        raise ValidationError(
            f"v_bonds must have shape {(rows - 1, cols)}, got {v_bonds.shape}"
        )
    return h_bonds.reshape(rows, max(cols - 1, 0)), v_bonds.reshape(max(rows - 1, 0), cols)


def bond_label(
    image: np.ndarray,
    h_bonds: np.ndarray,
    v_bonds: np.ndarray,
    *,
    h_wrap: np.ndarray | None = None,
    v_wrap: np.ndarray | None = None,
) -> np.ndarray:
    """Label bond-connected clusters of non-zero sites (4-neighbor).

    Parameters
    ----------
    image:
        Site occupation / spin values; 0 sites are background and never
        joined regardless of bonds.
    h_bonds:
        ``(rows, cols-1)`` booleans; ``h_bonds[i, j]`` activates the
        bond between ``(i, j)`` and ``(i, j+1)``.
    v_bonds:
        ``(rows-1, cols)`` booleans; ``v_bonds[i, j]`` activates the
        bond between ``(i, j)`` and ``(i+1, j)``.
    h_wrap, v_wrap:
        Optional periodic-boundary bonds: ``h_wrap`` is ``(rows,)``
        booleans joining ``(i, cols-1)`` to ``(i, 0)``; ``v_wrap`` is
        ``(cols,)`` joining ``(rows-1, j)`` to ``(0, j)``.

    Notes
    -----
    Bonds connect regardless of the two sites' (non-zero) values --
    callers like Swendsen-Wang only draw bonds between equal spins, and
    plain bond percolation has uniform site values.
    """
    image = check_image(image, square=False)
    h_bonds, v_bonds = _check_bonds(image, h_bonds, v_bonds)
    rows, cols = image.shape
    fg = image != 0
    idx = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)

    h_ok = fg[:, :-1] & fg[:, 1:] & h_bonds
    v_ok = fg[:-1, :] & fg[1:, :] & v_bonds
    us = [idx[:, :-1][h_ok], idx[:-1, :][v_ok]]
    vs = [idx[:, 1:][h_ok], idx[1:, :][v_ok]]
    if h_wrap is not None:
        h_wrap = np.asarray(h_wrap, dtype=bool)
        if h_wrap.shape != (rows,):
            raise ValidationError(f"h_wrap must have shape {(rows,)}, got {h_wrap.shape}")
        ok = fg[:, -1] & fg[:, 0] & h_wrap
        us.append(idx[:, -1][ok])
        vs.append(idx[:, 0][ok])
    if v_wrap is not None:
        v_wrap = np.asarray(v_wrap, dtype=bool)
        if v_wrap.shape != (cols,):
            raise ValidationError(f"v_wrap must have shape {(cols,)}, got {v_wrap.shape}")
        ok = fg[-1, :] & fg[0, :] & v_wrap
        us.append(idx[-1, :][ok])
        vs.append(idx[0, :][ok])
    u = np.concatenate(us)
    v = np.concatenate(vs)

    parent = shiloach_vishkin(rows * cols, u, v)
    seed_i = parent // cols
    seed_j = parent % cols
    flat_labels = 1 + seed_i * cols + seed_j
    return np.where(fg, flat_labels.reshape(rows, cols), 0).astype(np.int64)


def bond_label_bfs(image: np.ndarray, h_bonds: np.ndarray, v_bonds: np.ndarray) -> np.ndarray:
    """Pure-Python BFS reference for :func:`bond_label` (tests only)."""
    image = check_image(image, square=False)
    h_bonds, v_bonds = _check_bonds(image, h_bonds, v_bonds)
    rows, cols = image.shape
    labels = np.zeros((rows, cols), dtype=np.int64)

    def bonded(i, j, ni, nj) -> bool:
        if ni == i:
            return h_bonds[i, min(j, nj)]
        return v_bonds[min(i, ni), j]

    for si in range(rows):
        for sj in range(cols):
            if image[si, sj] == 0 or labels[si, sj] != 0:
                continue
            label = si * cols + sj + 1
            labels[si, sj] = label
            queue = deque([(si, sj)])
            while queue:
                ci, cj = queue.popleft()
                for di, dj in ((-1, 0), (0, -1), (0, 1), (1, 0)):
                    ni, nj = ci + di, cj + dj
                    if not (0 <= ni < rows and 0 <= nj < cols):
                        continue
                    if image[ni, nj] == 0 or labels[ni, nj] != 0:
                        continue
                    if bonded(ci, cj, ni, nj):
                        labels[ni, nj] = label
                        queue.append((ni, nj))
    return labels


def wolff_cluster(
    spins: np.ndarray,
    seed: tuple[int, int],
    beta: float,
    rng: np.random.Generator,
    *,
    periodic: bool = False,
) -> np.ndarray:
    """Grow one Wolff cluster from ``seed`` and return its boolean mask.

    The Wolff algorithm is the single-cluster cousin of Swendsen-Wang:
    starting from a random site, like-spin neighbors are absorbed with
    probability ``1 - exp(-2 beta)`` (each candidate bond tested once),
    and the finished cluster is flipped with probability 1.  Growth is
    a BFS whose frontier expands in vectorized batches.  With
    ``periodic=True`` neighbors wrap around the lattice (torus).
    """
    if beta < 0:
        raise ValidationError("beta must be non-negative")
    spins = np.asarray(spins)
    rows, cols = spins.shape
    si, sj = seed
    if not (0 <= si < rows and 0 <= sj < cols):
        raise ValidationError(f"seed {seed} outside {rows}x{cols} lattice")
    p_add = 1.0 - np.exp(-2.0 * beta)
    target = spins[si, sj]
    in_cluster = np.zeros((rows, cols), dtype=bool)
    tested = np.zeros((4, rows, cols), dtype=bool)  # one flag per direction
    in_cluster[si, sj] = True
    frontier_i = np.array([si])
    frontier_j = np.array([sj])
    directions = ((-1, 0), (1, 0), (0, -1), (0, 1))
    while frontier_i.size:
        next_i = []
        next_j = []
        for d, (di, dj) in enumerate(directions):
            ni = frontier_i + di
            nj = frontier_j + dj
            if periodic:
                ni = ni % rows
                nj = nj % cols
                ok = np.ones(len(ni), dtype=bool)
            else:
                ok = (0 <= ni) & (ni < rows) & (0 <= nj) & (nj < cols)
            fi, fj = frontier_i[ok], frontier_j[ok]
            ni, nj = ni[ok], nj[ok]
            fresh = ~tested[d, fi, fj]
            tested[d, fi, fj] = True
            fi, fj, ni, nj = fi[fresh], fj[fresh], ni[fresh], nj[fresh]
            candidate = (
                (spins[ni, nj] == target)
                & ~in_cluster[ni, nj]
                & (rng.random(len(ni)) < p_add)
            )
            ni, nj = ni[candidate], nj[candidate]
            in_cluster[ni, nj] = True
            next_i.append(ni)
            next_j.append(nj)
        frontier_i = np.concatenate(next_i) if next_i else np.empty(0, dtype=np.int64)
        frontier_j = np.concatenate(next_j) if next_j else np.empty(0, dtype=np.int64)
        if frontier_i.size:
            # Deduplicate sites absorbed via two directions at once.
            flat = frontier_i * cols + frontier_j
            flat = np.unique(flat)
            frontier_i = flat // cols
            frontier_j = flat % cols
    return in_cluster


def swendsen_wang_bonds(
    spins: np.ndarray, beta: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Draw Swendsen-Wang bond activations for an Ising configuration.

    A bond between equal-spin neighbors activates with probability
    ``1 - exp(-2 * beta)`` (coupling J = 1); bonds between opposite
    spins are never active.
    """
    if beta < 0:
        raise ValidationError("beta must be non-negative")
    spins = np.asarray(spins)
    p_bond = 1.0 - np.exp(-2.0 * beta)
    h_same = spins[:, :-1] == spins[:, 1:]
    v_same = spins[:-1, :] == spins[1:, :]
    h_bonds = h_same & (rng.random(h_same.shape) < p_bond)
    v_bonds = v_same & (rng.random(v_same.shape) < p_bond)
    return h_bonds, v_bonds


def swendsen_wang_bonds_periodic(
    spins: np.ndarray, beta: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Swendsen-Wang bond draws on a torus.

    Returns ``(h_bonds, v_bonds, h_wrap, v_wrap)`` suitable for
    :func:`bond_label`'s periodic arguments.
    """
    h_bonds, v_bonds = swendsen_wang_bonds(spins, beta, rng)
    p_bond = 1.0 - np.exp(-2.0 * beta)
    h_wrap = (spins[:, -1] == spins[:, 0]) & (rng.random(spins.shape[0]) < p_bond)
    v_wrap = (spins[-1, :] == spins[0, :]) & (rng.random(spins.shape[1]) < p_bond)
    return h_bonds, v_bonds, h_wrap, v_wrap

"""Per-word shadow memory: the precise same-superstep race detector.

The seed simulator logged writes as covering intervals, which both
over- and under-approximates scattered accesses: two processors writing
disjoint strided index sets were rejected (their covering intervals
overlap), while a write landing on a word another processor already
*read* this superstep was never detected at all (reads were not
logged).  This module tracks every word individually.

For each word of each block we remember, generation-stamped per
superstep, the pid of the last writer and the pid of the remote
reader(s).  The three hazard kinds of the split-phase discipline are
then exact set intersections:

* **read-after-write** -- a remote read touches a word some *other*
  processor wrote this superstep;
* **write-after-write** -- a write touches a word some other processor
  wrote this superstep;
* **write-after-read** -- a write touches a word some other processor
  remotely read this superstep.

A processor's accesses to the same word are internally ordered on a
real machine, so same-pid repeats never conflict.  Clearing is O(1):
the generation counter is bumped at every phase-closing barrier and
stale stamps simply stop matching.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.errors import HazardError

#: Shadow cell holding no pid.
NO_PID = -1
#: Shadow reader cell touched by two or more distinct pids.
MANY_PIDS = -2


def compress_ranges(indices: np.ndarray) -> tuple[tuple[int, int], ...]:
    """Collapse a set of element indices into sorted ``[start, stop)`` runs."""
    idx = np.unique(np.asarray(indices, dtype=np.int64))
    if idx.size == 0:
        return ()
    breaks = np.flatnonzero(np.diff(idx) != 1)
    starts = np.concatenate(([0], breaks + 1))
    stops = np.concatenate((breaks, [idx.size - 1]))
    return tuple((int(idx[a]), int(idx[b]) + 1) for a, b in zip(starts, stops))


def _format_ranges(ranges: tuple[tuple[int, int], ...]) -> str:
    return ",".join(
        f"{a}" if b == a + 1 else f"{a}:{b}" for a, b in ranges
    )


@dataclass(frozen=True)
class Hazard:
    """One detected same-superstep conflict, with full provenance."""

    kind: str  #: ``read-after-write`` | ``write-after-write`` | ``write-after-read``
    array: str  #: name of the :class:`GlobalArray`
    owner: int  #: pid owning the conflicted block
    accessor: int  #: pid performing the *later* access
    others: tuple[int, ...]  #: pids of the earlier conflicting accesses
    phase: str | None  #: label of the superstep the conflict occurred in
    ranges: tuple[tuple[int, int], ...]  #: conflicted element ranges

    def message(self) -> str:
        if self.others == (MANY_PIDS,):
            who = "multiple processors"
        else:
            pids = ", ".join(str(p) for p in self.others)
            who = f"pid{'s' if len(self.others) > 1 else ''} {pids}"
        where = f"{self.array}[{self.owner}][{_format_ranges(self.ranges)}]"
        phase = f" in phase {self.phase!r}" if self.phase else " in the same superstep"
        if self.kind == "read-after-write":
            return (
                f"read-after-write hazard: remote read of {where} by pid "
                f"{self.accessor} overlaps a write by {who}{phase}; insert a "
                "barrier between the write and the read"
            )
        if self.kind == "write-after-write":
            return (
                f"write-after-write hazard: write to {where} by pid "
                f"{self.accessor} overlaps a write by {who}{phase}; "
                "concurrent writes to the same words are unordered -- "
                "separate them with a barrier"
            )
        return (
            f"write-after-read hazard: write to {where} by pid "
            f"{self.accessor} overlaps a remote read by {who}{phase}; the "
            "read may observe either value -- separate them with a barrier"
        )

    def raise_(self) -> None:
        err = HazardError(self.message())
        err.hazard = self
        raise err


class _ShadowBlock:
    """Shadow cells for one owner's block (lazily allocated)."""

    __slots__ = ("length", "writer", "wgen", "reader", "rgen")

    def __init__(self, length: int):
        self.length = length
        self.writer: np.ndarray | None = None
        self.wgen: np.ndarray | None = None
        self.reader: np.ndarray | None = None
        self.rgen: np.ndarray | None = None

    def ensure(self) -> None:
        if self.writer is None:
            self.writer = np.full(self.length, NO_PID, dtype=np.int32)
            self.wgen = np.zeros(self.length, dtype=np.int64)
            self.reader = np.full(self.length, NO_PID, dtype=np.int32)
            self.rgen = np.zeros(self.length, dtype=np.int64)


class ShadowMemory:
    """Per-word access tracking for one distributed array.

    ``sel`` arguments are either a ``slice`` (contiguous access) or an
    ``int64`` index array (scattered access); hazards are evaluated on
    the exact word set either way.
    """

    def __init__(self, array_name: str, lengths: list[int]):
        self.array_name = array_name
        self._blocks = [_ShadowBlock(n) for n in lengths]
        # Generation 1 so freshly zero-stamped cells are already stale.
        self._gen = 1

    def clear(self) -> None:
        """Forget all accesses (called at each phase-closing barrier)."""
        self._gen += 1

    # -- recording ---------------------------------------------------------

    def record_read(self, owner: int, sel, pid: int, phase: str | None) -> None:
        """Log a remote read; raises on read-after-write."""
        blk = self._blocks[owner]
        if self._empty(sel):
            return
        blk.ensure()
        g = self._gen
        w, wg = blk.writer[sel], blk.wgen[sel]
        raw = (wg == g) & (w != pid)
        if raw.any():
            self._conflict("read-after-write", owner, pid, w[raw], sel, raw, phase)
        r, rg = blk.reader[sel], blk.rgen[sel]
        live = rg == g
        blk.reader[sel] = np.where(
            live & (r != pid), MANY_PIDS, np.where(live, r, pid)
        ).astype(np.int32)
        blk.rgen[sel] = g

    def record_write(self, owner: int, sel, pid: int, phase: str | None) -> None:
        """Log a write; raises on write-after-write / write-after-read."""
        blk = self._blocks[owner]
        if self._empty(sel):
            return
        blk.ensure()
        g = self._gen
        w, wg = blk.writer[sel], blk.wgen[sel]
        waw = (wg == g) & (w != pid)
        if waw.any():
            self._conflict("write-after-write", owner, pid, w[waw], sel, waw, phase)
        r, rg = blk.reader[sel], blk.rgen[sel]
        war = (rg == g) & (r != pid)
        if war.any():
            self._conflict("write-after-read", owner, pid, r[war], sel, war, phase)
        blk.writer[sel] = pid
        blk.wgen[sel] = g

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _empty(sel) -> bool:
        if isinstance(sel, slice):
            return sel.stop <= sel.start
        return np.asarray(sel).size == 0

    def _conflict(self, kind, owner, pid, other_pids, sel, mask, phase) -> None:
        if isinstance(sel, slice):
            elements = sel.start + np.flatnonzero(mask)
        else:
            elements = np.asarray(sel)[mask]
        others = np.unique(other_pids)
        if MANY_PIDS in others:
            others = np.array([MANY_PIDS])
        Hazard(
            kind=kind,
            array=self.array_name,
            owner=owner,
            accessor=pid,
            others=tuple(int(p) for p in others),
            phase=phase,
            ranges=compress_ranges(elements),
        ).raise_()

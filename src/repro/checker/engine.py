"""The static-analysis engine: rule families, selection, baselines.

One parse per file; every registered family checker runs over the same
tree.  Families:

=======  ==================================================  =========
family   what it checks                                      module
=======  ==================================================  =========
SPMD     split-phase discipline of SPMD generator programs   lint
ASYNC    asyncio hygiene in the serving layer                rules_async
RES      resource lifetime (shm segments, pools, sockets)    rules_res
ERR      error-boundary hygiene (ReproError contract)        rules_err
COST     BDM cost-model consistency (charging sites)         rules_cost
OBS      observability hygiene (span lifetime, emit guards)  rules_obs
=======  ==================================================  =========

Selection (``--select``/``--ignore``) accepts family names and full
rule IDs; unknown tokens raise :class:`ReproError`.  SPMD000 (a file
that does not parse) is reported regardless of selection: an
unparsable file was not checked by *any* family.

Baselines grandfather existing findings: a JSON file mapping
``file -> rule -> count``.  A finding is suppressed while the file
still has no more findings of that rule than the baseline allows;
entries that no longer match anything are reported as stale so the
file shrinks monotonically (see docs/CHECKER.md for the workflow).

For the rare pattern a rule cannot prove safe (e.g. ownership transfer
of a shared-memory segment into an object whose ``__exit__`` tears it
down), a line can carry an inline suppression comment::

    shm = SharedMemory(create=True, size=n)  # check: ignore[RES201]

naming the rule IDs (or families) it waives on that line.
"""

from __future__ import annotations

import ast
import inspect
import json
import re
import textwrap
from collections import Counter
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.checker import rules_async, rules_cost, rules_err, rules_obs, rules_res
from repro.checker.lint import (
    _find_programs,
    _ProgramLinter,
    iter_python_files,
)
from repro.checker.rules import RULES, LintDiagnostic, rule_family
from repro.utils.errors import ReproError

Checker = Callable[[ast.AST, str], list[LintDiagnostic]]


def _check_spmd(tree: ast.AST, filename: str) -> list[LintDiagnostic]:
    diags: list[LintDiagnostic] = []
    for fn, ctx_name in _find_programs(tree):
        diags.extend(_ProgramLinter(fn, ctx_name, filename).run())
    return diags


#: Family name -> checker run against each parsed file.
CHECKERS: dict[str, Checker] = {
    "SPMD": _check_spmd,
    "ASYNC": rules_async.check,
    "RES": rules_res.check,
    "ERR": rules_err.check,
    "COST": rules_cost.check,
    "OBS": rules_obs.check,
}

FAMILIES: tuple[str, ...] = tuple(CHECKERS)


def expand_selection(tokens: Iterable[str] | None, *, flag: str = "--select") -> "_Selection | None":
    """Parse a list of family names / rule IDs into a selection filter."""
    if tokens is None:
        return None
    families: set[str] = set()
    ids: set[str] = set()
    unknown: list[str] = []
    for raw in tokens:
        token = raw.strip().upper()
        if not token:
            continue
        if token in CHECKERS:
            families.add(token)
        elif token in RULES:
            ids.add(token)
        else:
            unknown.append(token)
    if unknown:
        raise ReproError(
            f"unknown rule or family for {flag}: {', '.join(sorted(unknown))}"
        )
    return _Selection(families=families, ids=ids)


@dataclass(frozen=True)
class _Selection:
    families: set[str] = field(default_factory=set)
    ids: set[str] = field(default_factory=set)

    def matches(self, rule_id: str) -> bool:
        return rule_id in self.ids or rule_family(rule_id) in self.families


_INLINE_IGNORE = re.compile(r"#\s*check:\s*ignore\[([A-Za-z0-9_,\s]+)\]")


def _inline_ignores(source: str) -> dict[int, set[str]]:
    """Map 1-based line numbers to the upper-cased tokens they waive."""
    out: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _INLINE_IGNORE.search(line)
        if m:
            out[lineno] = {t.strip().upper() for t in m.group(1).split(",") if t.strip()}
    return out


def _inline_suppressed(diag: LintDiagnostic, ignores: dict[int, set[str]]) -> bool:
    tokens = ignores.get(diag.line)
    if not tokens:
        return False
    return diag.rule in tokens or rule_family(diag.rule) in tokens


def _filter(
    diags: list[LintDiagnostic],
    select: "_Selection | None",
    ignore: "_Selection | None",
) -> list[LintDiagnostic]:
    out = []
    for d in diags:
        if d.rule == "SPMD000":  # parse failure: no family checked the file
            out.append(d)
            continue
        if select is not None and not select.matches(d.rule):
            continue
        if ignore is not None and ignore.matches(d.rule):
            continue
        out.append(d)
    return out


def analyze_source(
    source: str,
    filename: str = "<string>",
    *,
    select: "_Selection | None" = None,
    ignore: "_Selection | None" = None,
) -> list[LintDiagnostic]:
    """Run every (selected) family over one file's source."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            LintDiagnostic(
                rule="SPMD000",
                message=f"could not parse: {exc.msg}",
                file=filename,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                function="<module>",
            )
        ]
    diags: list[LintDiagnostic] = []
    for family, checker in CHECKERS.items():
        if select is not None and family not in select.families:
            # Still needed if an individual rule of this family is selected.
            if not any(rule_family(i) == family for i in select.ids):
                continue
        diags.extend(checker(tree, filename))
    inline = _inline_ignores(source)
    if inline:
        diags = [d for d in diags if not _inline_suppressed(d, inline)]
    diags = _filter(diags, select, ignore)
    return sorted(diags, key=lambda d: (d.line, d.col, d.rule))


def analyze_paths(
    paths: Iterable[str],
    *,
    select: "_Selection | None" = None,
    ignore: "_Selection | None" = None,
) -> list[LintDiagnostic]:
    """Analyze all ``.py`` files under ``paths`` (files or directories)."""
    diags: list[LintDiagnostic] = []
    for path in iter_python_files(paths):
        try:
            text = path.read_text()
        except OSError:
            continue
        diags.extend(analyze_source(text, str(path), select=select, ignore=ignore))
    return diags


def analyze_callable(fn) -> list[LintDiagnostic]:
    """Analyze a live function object (used by the pytest plugin).

    Runs every family over the function's (dedented) source with line
    numbers remapped to the real file.  Returns ``[]`` when source is
    unavailable.
    """
    try:
        source = inspect.getsource(fn)
        filename = inspect.getsourcefile(fn) or "<unknown>"
        _, first_line = inspect.getsourcelines(fn)
    except (OSError, TypeError):
        return []
    dedented = textwrap.dedent(source)
    try:
        ast.parse(dedented)
    except SyntaxError:
        # Decorated/partial sources that do not stand alone.
        return []
    offset = first_line - 1
    return [
        replace(d, line=d.line + offset)
        for d in analyze_source(dedented, filename)
    ]


# -- baseline ---------------------------------------------------------------

BASELINE_SCHEMA = "repro-checker-baseline/v1"

#: Default location, applied by ``repro check`` when the file exists.
DEFAULT_BASELINE = ".repro-checker-baseline.json"

BaselineEntries = dict[str, dict[str, int]]


@dataclass
class BaselineResult:
    """Outcome of applying a baseline to a list of findings."""

    diags: list[LintDiagnostic]  #: findings NOT covered by the baseline
    suppressed: int  #: findings swallowed as grandfathered
    stale: BaselineEntries  #: allowances that matched nothing (expired)


def load_baseline(path: str | Path) -> BaselineEntries:
    try:
        payload = json.loads(Path(path).read_text())
    except OSError as exc:
        raise ReproError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"baseline {path} is not valid JSON: {exc}") from exc
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ReproError(
            f"baseline {path} has schema {payload.get('schema')!r}, "
            f"expected {BASELINE_SCHEMA!r}"
        )
    entries = payload.get("entries", {})
    out: BaselineEntries = {}
    for file, rules in entries.items():
        out[str(file)] = {str(r): int(n) for r, n in rules.items()}
    return out


def baseline_from(diags: Sequence[LintDiagnostic]) -> BaselineEntries:
    counts: Counter[tuple[str, str]] = Counter(
        (_baseline_key(d.file), d.rule) for d in diags
    )
    entries: BaselineEntries = {}
    for (file, rule), n in sorted(counts.items()):
        entries.setdefault(file, {})[rule] = n
    return entries


def save_baseline(path: str | Path, entries: BaselineEntries) -> None:
    payload = {"schema": BASELINE_SCHEMA, "entries": entries}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _baseline_key(file: str) -> str:
    return Path(file).as_posix()


def apply_baseline(
    diags: Sequence[LintDiagnostic],
    entries: BaselineEntries,
    *,
    scanned: set[str] | None = None,
) -> BaselineResult:
    """Suppress up to ``entries[file][rule]`` findings per (file, rule).

    Findings are suppressed in source order, so when a file has more
    findings than its allowance the *new* (later) ones surface.
    Allowances that matched nothing are reported as stale -- but only
    for files in ``scanned`` (when given), so checking a subset of the
    repo does not misreport the rest of the baseline as expired.
    """
    remaining = {f: dict(rules) for f, rules in entries.items()}
    kept: list[LintDiagnostic] = []
    suppressed = 0
    for d in sorted(diags, key=lambda d: (d.file, d.line, d.col, d.rule)):
        allowance = remaining.get(_baseline_key(d.file), {})
        if allowance.get(d.rule, 0) > 0:
            allowance[d.rule] -= 1
            suppressed += 1
        else:
            kept.append(d)
    stale: BaselineEntries = {}
    for file, rules in remaining.items():
        if scanned is not None and file not in scanned:
            continue
        left = {r: n for r, n in rules.items() if n > 0}
        if left:
            stale[file] = left
    return BaselineResult(diags=kept, suppressed=suppressed, stale=stale)

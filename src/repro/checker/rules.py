"""Rule catalog and diagnostic records for the checker.

Every rule has a stable ID (``<FAMILY><###>``) so findings can be
referenced in docs, suppressed selectively on the command line, and
asserted in tests.  Severity ``error`` findings fail ``repro check``
(exit 1); ``warning`` findings are reported but do not affect the exit
status.

This module defines the catalog container and the SPMD family; the
other families (ASYNC, RES, ERR, COST) register themselves from their
``rules_*`` modules via :func:`register_rules` when
:mod:`repro.checker.engine` is imported.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LintRule:
    id: str
    name: str
    severity: str  #: ``error`` or ``warning``
    description: str


def rule_family(rule_id: str) -> str:
    """The alphabetic family prefix of a rule ID (``ASYNC102`` -> ``ASYNC``)."""
    return rule_id.rstrip("0123456789")


RULES: dict[str, LintRule] = {
    r.id: r
    for r in (
        LintRule(
            "SPMD000",
            "unparsable file",
            "error",
            "The file could not be parsed as Python; nothing was checked.",
        ),
        LintRule(
            "SPMD001",
            "unyielded sync token",
            "error",
            "ctx.sync()/ctx.barrier() returns a token that must be yielded "
            "to the runner; calling it as a plain statement synchronizes "
            "nothing (the prefetches stay pending and the superstep never "
            "ends).",
        ),
        LintRule(
            "SPMD002",
            "handle read before sync",
            "error",
            "A prefetch Handle's .value is consumed on a path with no "
            "intervening `yield ctx.sync()`; split-phase data is undefined "
            "until the sync completes (Split-C's un-synchronized-read "
            "failure mode).",
        ),
        LintRule(
            "SPMD003",
            "barrier divergence",
            "error",
            "A `yield ctx.barrier()` sits inside a pid-dependent branch or "
            "loop, so processors would arrive at different barriers (or "
            "different counts of them) and deadlock on a real machine.",
        ),
        LintRule(
            "SPMD004",
            "non-collective array allocation",
            "error",
            "ctx.array() is collective -- every processor must request the "
            "same array; allocating inside a pid-dependent branch breaks "
            "the collective contract.",
        ),
        LintRule(
            "SPMD005",
            "prefetch handle never consumed",
            "warning",
            "A ctx.prefetch()/ctx.prefetch_indices() result is discarded or "
            "never read; the remote fetch (and its simulated cost) is dead "
            "communication.",
        ),
    )
}


def register_rules(*rules: LintRule) -> None:
    """Add rules to the catalog (idempotent; used by the family modules)."""
    for rule in rules:
        RULES[rule.id] = rule


@dataclass(frozen=True)
class LintDiagnostic:
    """One finding: a rule violation at a source location."""

    rule: str
    message: str
    file: str
    line: int
    col: int
    function: str

    @property
    def severity(self) -> str:
        return RULES[self.rule].severity

    def format(self) -> str:
        return (
            f"{self.file}:{self.line}:{self.col}: {self.rule} "
            f"[{self.severity}] {self.message} (in {self.function!r})"
        )


def format_catalog() -> str:
    """Human-readable rule listing for ``repro check --list-rules``."""
    lines = []
    last_family = None
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        family = rule_family(rule_id)
        if family != last_family:
            if lines:
                lines.append("")
            last_family = family
        lines.append(f"{rule.id} [{rule.severity}] {rule.name}")
        lines.append(f"    {rule.description}")
    return "\n".join(lines)

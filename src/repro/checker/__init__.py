"""Correctness tooling for Split-C-style SPMD programs.

Two complementary layers:

* :mod:`repro.checker.shadow` -- a dynamic race detector.  Per-word
  shadow memory attached to every :class:`~repro.bdm.memory.GlobalArray`
  classifies same-superstep conflicts precisely (read-after-write,
  write-after-write, write-after-read) and reports them with full
  provenance: array name, owning processor, conflicting pids, phase
  label, and the exact element ranges involved.
* :mod:`repro.checker.lint` -- a static AST pass over SPMD generator
  programs (the :mod:`repro.bdm.spmd` DSL) that flags split-phase
  discipline violations *without executing the program*: unyielded
  sync tokens, handle reads with no intervening ``sync()``, barriers
  inside pid-dependent branches, non-collective allocations, and
  dropped prefetch handles.  Rules carry stable IDs (SPMD001...).

Entry points: ``repro check`` on the command line, the fixtures in
:mod:`repro.checker.pytest_plugin` under pytest, and the functions
re-exported here for programmatic use.
"""

from __future__ import annotations

from repro.checker.lint import lint_callable, lint_paths, lint_source
from repro.checker.rules import RULES, LintDiagnostic, LintRule
from repro.checker.shadow import Hazard, ShadowMemory

__all__ = [
    "Hazard",
    "LintDiagnostic",
    "LintRule",
    "RULES",
    "ShadowMemory",
    "lint_callable",
    "lint_paths",
    "lint_source",
]

"""Correctness tooling: dynamic race detection + whole-repo static analysis.

Three complementary layers:

* :mod:`repro.checker.shadow` -- a dynamic race detector.  Per-word
  shadow memory attached to every :class:`~repro.bdm.memory.GlobalArray`
  classifies same-superstep conflicts precisely (read-after-write,
  write-after-write, write-after-read) and reports them with full
  provenance: array name, owning processor, conflicting pids, phase
  label, and the exact element ranges involved.
* :mod:`repro.checker.lint` -- a static AST pass over SPMD generator
  programs (the :mod:`repro.bdm.spmd` DSL) that flags split-phase
  discipline violations *without executing the program*: unyielded
  sync tokens, handle reads with no intervening ``sync()``, barriers
  inside pid-dependent branches, non-collective allocations, and
  dropped prefetch handles (rules SPMD000...).
* :mod:`repro.checker.engine` -- the general analysis engine that runs
  the SPMD pass plus four whole-repo rule families over every file:
  ASYNC1xx (asyncio hygiene), RES2xx (resource lifetime: shm segments,
  pools, sockets), ERR3xx (error-boundary hygiene), and COST4xx (BDM
  cost-model consistency).  Selection by family or rule ID, JSON and
  SARIF 2.1.0 emitters, and a baseline file for grandfathered
  findings.  See docs/CHECKER.md for the full catalog.

Entry points: ``repro check`` on the command line, the fixtures in
:mod:`repro.checker.pytest_plugin` under pytest, and the functions
re-exported here for programmatic use.
"""

from __future__ import annotations

from repro.checker.emitters import to_json_payload, to_sarif
from repro.checker.engine import (
    CHECKERS,
    FAMILIES,
    analyze_callable,
    analyze_paths,
    analyze_source,
    apply_baseline,
    baseline_from,
    expand_selection,
    load_baseline,
    save_baseline,
)
from repro.checker.lint import lint_callable, lint_paths, lint_source
from repro.checker.rules import RULES, LintDiagnostic, LintRule, rule_family
from repro.checker.shadow import Hazard, ShadowMemory

__all__ = [
    "CHECKERS",
    "FAMILIES",
    "Hazard",
    "LintDiagnostic",
    "LintRule",
    "RULES",
    "ShadowMemory",
    "analyze_callable",
    "analyze_paths",
    "analyze_source",
    "apply_baseline",
    "baseline_from",
    "expand_selection",
    "lint_callable",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "rule_family",
    "save_baseline",
    "to_json_payload",
    "to_sarif",
]

"""ASYNC1xx: asyncio hygiene rules.

The serving layer (:mod:`repro.service`) runs an event loop next to a
multiprocessing pool; the two failure modes these rules target both
shipped in real PRs here: a blocking call on the loop stalls every
in-flight request, and an asyncio stream created without an explicit
``limit=`` silently caps requests at 64 KiB (the PR 5 bug, encoded as
ASYNC102).
"""

from __future__ import annotations

import ast

from repro.checker.astutil import (
    call_name,
    dotted_name,
    enclosing_function_names,
    has_keyword,
    own_scope_walk,
)
from repro.checker.rules import LintDiagnostic, LintRule, register_rules

register_rules(
    LintRule(
        "ASYNC101",
        "blocking call in async function",
        "error",
        "A known-blocking call (time.sleep, subprocess, synchronous "
        "file/socket IO, pool.map/run_tasks) inside `async def` stalls "
        "the whole event loop; use asyncio.sleep / run_in_executor / "
        "async IO instead.",
    ),
    LintRule(
        "ASYNC102",
        "asyncio stream without explicit limit=",
        "error",
        "asyncio.open_unix_connection/start_unix_server (and their TCP "
        "twins) default to a 64 KiB StreamReader limit; any payload "
        "larger than that kills the connection. Pass limit= explicitly, "
        "sized to the protocol's maximum message.",
    ),
    LintRule(
        "ASYNC103",
        "task result dropped",
        "warning",
        "asyncio.create_task/ensure_future as a bare statement drops the "
        "only strong reference to the task: it can be garbage-collected "
        "mid-flight and its exceptions are never observed. Retain the "
        "handle (and discard it in a done callback).",
    ),
    LintRule(
        "ASYNC104",
        "await under held lock without a deadline",
        "warning",
        "An `await` inside an `async with <lock>` region with no "
        "asyncio.wait_for/timeout means one slow peer holds the lock "
        "indefinitely and the service cannot shed load. Bound the wait.",
    ),
)

#: Calls that block the event loop no matter how they are reached.
_BLOCKING = {
    "time.sleep",
    "os.system",
    "os.waitpid",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "socket.create_connection",
    "urllib.request.urlopen",
}

#: Blocking pool-dispatch method names (flagged when called on a
#: pool-ish receiver) and bare helpers.
_POOL_METHODS = {"map", "starmap", "apply"}
_BLOCKING_BARE = {"run_tasks"}

#: Stream constructors whose default limit is 64 KiB.  The unix-socket
#: pair is flagged on any receiver; the generic TCP pair only when
#: called off ``asyncio``, so unrelated ``start_server`` methods on
#: project classes are not caught.
_STREAM_ALWAYS = {"open_unix_connection", "start_unix_server"}
_STREAM_ASYNCIO = {"asyncio.open_connection", "asyncio.start_server"}

_TASK_SPAWNERS = {"create_task", "ensure_future"}


def _is_blocking_call(node: ast.Call) -> str | None:
    """A human-readable name when ``node`` is a known-blocking call."""
    name = call_name(node)
    if name is None:
        return None
    if name in _BLOCKING:
        return name
    last = name.rsplit(".", 1)[-1]
    if last in _BLOCKING_BARE:
        return last
    if name == "open":
        return "open"
    if last in _POOL_METHODS and "." in name:
        receiver = name.rsplit(".", 1)[0].rsplit(".", 1)[-1].lower()
        if "pool" in receiver or "supervisor" in receiver:
            return name
    return None


def _lockish(expr: ast.AST) -> bool:
    """Does a with-item context expression look like a lock/semaphore?"""
    node = expr.func if isinstance(expr, ast.Call) else expr
    name = dotted_name(node)
    if name is None:
        return False
    last = name.rsplit(".", 1)[-1].lower()
    return "lock" in last or "semaphore" in last


def _await_has_deadline(node: ast.Await) -> bool:
    inner = node.value
    if not isinstance(inner, ast.Call):
        return False
    name = call_name(inner) or ""
    last = name.rsplit(".", 1)[-1]
    if last in {"wait_for", "wait"}:
        return True
    return has_keyword(inner, "timeout")


def check(tree: ast.AST, filename: str) -> list[LintDiagnostic]:
    diags: list[LintDiagnostic] = []
    owners = enclosing_function_names(tree)

    def add(rule: str, node: ast.AST, message: str) -> None:
        diags.append(
            LintDiagnostic(
                rule=rule,
                message=message,
                file=filename,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                function=owners.get(node, "<module>"),
            )
        )

    # ASYNC102/ASYNC103 apply anywhere a stream or task is created --
    # spawning helpers are often plain functions driven by loop callbacks.
    for node in ast.walk(tree):
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            spawn = call_name(node.value) or ""
            if spawn.rsplit(".", 1)[-1] in _TASK_SPAWNERS:
                add(
                    "ASYNC103",
                    node,
                    f"result of {spawn}() dropped; the task can be "
                    "collected mid-flight and its exception lost",
                )
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        if name is None:
            continue
        last = name.rsplit(".", 1)[-1]
        if (last in _STREAM_ALWAYS or name in _STREAM_ASYNCIO) and not has_keyword(
            node, "limit"
        ):
            add(
                "ASYNC102",
                node,
                f"{last}() without an explicit limit=; the 64 KiB default "
                "truncates large messages",
            )

    for fn in ast.walk(tree):
        if not isinstance(fn, ast.AsyncFunctionDef):
            continue
        for node in own_scope_walk(fn):
            if isinstance(node, ast.Call):
                blocking = _is_blocking_call(node)
                if blocking is not None:
                    add(
                        "ASYNC101",
                        node,
                        f"blocking call {blocking}() inside async def "
                        f"{fn.name!r}; it stalls the event loop",
                    )
            if isinstance(node, ast.AsyncWith) and any(
                _lockish(item.context_expr) for item in node.items
            ):
                for inner in node.body:
                    for sub in own_scope_walk(inner):
                        if isinstance(sub, ast.Await) and not _await_has_deadline(sub):
                            add(
                                "ASYNC104",
                                sub,
                                "await while holding a lock, with no "
                                "wait_for/timeout bounding it",
                            )
    return diags

"""Output formats for ``repro check``: text, JSON, SARIF 2.1.0.

The SARIF emitter produces the minimal valid document GitHub code
scanning accepts (``version``, ``$schema``, one run with driver rule
metadata, and per-finding results with physical locations), so the CI
``check`` job can upload findings as PR annotations.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.checker.rules import RULES, LintDiagnostic

JSON_SCHEMA = "repro-checker-findings/v1"
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"

_SARIF_LEVELS = {"error": "error", "warning": "warning"}


def render_text(diags: Sequence[LintDiagnostic]) -> list[str]:
    """One ``file:line:col: RULE [severity] message`` line per finding."""
    return [d.format() for d in diags]


def to_json_payload(
    diags: Sequence[LintDiagnostic],
    *,
    files_checked: int = 0,
    suppressed: int = 0,
) -> dict:
    findings = [
        {
            "rule": d.rule,
            "severity": d.severity,
            "file": d.file,
            "line": d.line,
            "col": d.col,
            "function": d.function,
            "message": d.message,
        }
        for d in diags
    ]
    return {
        "schema": JSON_SCHEMA,
        "summary": {
            "files_checked": files_checked,
            "errors": sum(1 for d in diags if d.severity == "error"),
            "warnings": sum(1 for d in diags if d.severity == "warning"),
            "suppressed": suppressed,
        },
        "findings": findings,
    }


def to_sarif(diags: Sequence[LintDiagnostic], *, tool_version: str = "0") -> dict:
    """A SARIF 2.1.0 document covering ``diags``.

    Rule metadata is included for every rule that appears in the
    results (plus nothing else, keeping the document small), and each
    result's ``ruleIndex`` points into that array as the spec asks.
    """
    rule_ids = sorted({d.rule for d in diags})
    rule_index = {rid: i for i, rid in enumerate(rule_ids)}
    rules_meta = []
    for rid in rule_ids:
        rule = RULES[rid]
        rules_meta.append(
            {
                "id": rule.id,
                "name": rule.name,
                "shortDescription": {"text": rule.name},
                "fullDescription": {"text": rule.description},
                "defaultConfiguration": {"level": _SARIF_LEVELS[rule.severity]},
            }
        )
    results = []
    for d in diags:
        results.append(
            {
                "ruleId": d.rule,
                "ruleIndex": rule_index[d.rule],
                "level": _SARIF_LEVELS[d.severity],
                "message": {"text": f"{d.message} (in {d.function!r})"},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": d.file},
                            "region": {
                                "startLine": d.line,
                                "startColumn": max(1, d.col + 1),
                            },
                        }
                    }
                ],
            }
        )
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-check",
                        "version": tool_version,
                        "rules": rules_meta,
                    }
                },
                "results": results,
            }
        ],
    }


def dump_json(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"

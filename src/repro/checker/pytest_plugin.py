"""Pytest integration for the checker.

Registered from ``tests/conftest.py`` via ``pytest_plugins``.  Two
layers of strictness:

* An **autouse** fixture wraps :meth:`_SpmdRunner.run` so every SPMD
  program executed by any test is statically analyzed first -- by the
  full engine (all rule families: SPMD, ASYNC, RES, ERR, COST), not
  just the SPMD lint; findings surface as :class:`SpmdLintWarning`
  warnings (visible with ``-W`` or in the warnings summary) without
  changing test outcomes.  Together with the shadow-memory detector --
  which is on by default on every ``Machine(check_hazards=True)`` --
  this puts the whole suite under dynamic *and* static checking.
* The opt-in ``spmd_strict`` fixture escalates error-severity findings
  of *any* family to :class:`~repro.utils.errors.LintError` before the
  program runs, for tests that want a hard gate.
"""

from __future__ import annotations

import warnings

import pytest

from repro.checker.engine import analyze_callable
from repro.utils.errors import LintError


class SpmdLintWarning(UserWarning):
    """A static checker finding surfaced while running an SPMD program."""


#: Analysis results keyed by code location, so repeatedly-run programs
#: (parametrized tests, stress loops) are parsed once.
_lint_cache: dict[tuple[str, int], list] = {}


def _cached_lint(program):
    code = getattr(program, "__code__", None)
    if code is None:
        return analyze_callable(program)
    key = (code.co_filename, code.co_firstlineno)
    if key not in _lint_cache:
        _lint_cache[key] = analyze_callable(program)
    return _lint_cache[key]


@pytest.fixture(autouse=True)
def _spmd_autolint(monkeypatch):
    """Lint every program handed to ``run_spmd``; warn on findings."""
    from repro.bdm import spmd as spmd_mod

    original = spmd_mod._SpmdRunner.run

    def linted_run(self):
        for diag in _cached_lint(self.program):
            warnings.warn(
                f"{diag.rule} {diag.message} ({diag.function} at "
                f"{diag.file}:{diag.line})",
                SpmdLintWarning,
                stacklevel=2,
            )
        return original(self)

    monkeypatch.setattr(spmd_mod._SpmdRunner, "run", linted_run)
    yield


@pytest.fixture
def spmd_strict(monkeypatch):
    """Fail fast: error-severity lint findings raise before execution."""
    from repro.bdm import spmd as spmd_mod

    original = spmd_mod._SpmdRunner.run

    def strict_run(self):
        errors = [d for d in _cached_lint(self.program) if d.severity == "error"]
        if errors:
            raise LintError(
                "SPMD program failed strict lint:\n"
                + "\n".join(d.format() for d in errors)
            )
        return original(self)

    monkeypatch.setattr(spmd_mod._SpmdRunner, "run", strict_run)
    yield

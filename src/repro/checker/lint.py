"""Static AST lint pass for SPMD generator programs.

Analyzes programs written in the :mod:`repro.bdm.spmd` DSL *without
executing them*.  A function is treated as an SPMD program when it is a
generator and takes a context parameter (annotated ``SpmdContext`` or
simply named ``ctx``); nested definitions are discovered too, so the
usual ``def program(ctx): ...`` closure inside a driver is found.

The checks are deliberately shallow dataflow approximations -- sound
enough to catch the split-phase discipline bugs the paper warns about
(Section 3: "reading un-synchronized data is a failure mode") without a
full CFG:

* handle state (for SPMD002) flows linearly through statements, forks
  at ``if``/loops and re-joins as the union of the per-path states, so
  "read with no sync on *some* path" is what gets flagged;
* pid-taint (for SPMD003/SPMD004) is a flow-insensitive fixpoint over
  assignments seeded by ``ctx.pid``;
* a loop body is analyzed once, so a handle prefetched at the bottom of
  an iteration and read at the top of the next is not flagged (the
  dynamic shadow-memory checker still catches the executed race).
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import replace
from pathlib import Path
from typing import Iterable, Iterator

from repro.checker.rules import LintDiagnostic

_PREFETCH = ("prefetch", "prefetch_indices")
_TOKENS = ("sync", "barrier")
_NESTED_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def _own_walk(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root``'s subtree without descending into nested scopes."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _NESTED_SCOPES):
                continue
            stack.append(child)


def _ctx_param_name(fn: ast.FunctionDef) -> str | None:
    args = list(fn.args.posonlyargs) + list(fn.args.args) + list(fn.args.kwonlyargs)
    for a in args:
        if a.annotation is not None and "SpmdContext" in ast.unparse(a.annotation):
            return a.arg
    for a in args:
        if a.arg == "ctx":
            return a.arg
    return None


def _is_generator(fn: ast.FunctionDef) -> bool:
    return any(
        isinstance(n, (ast.Yield, ast.YieldFrom)) for n in _own_walk(fn) if n is not fn
    )


def _find_programs(tree: ast.AST) -> list[tuple[ast.FunctionDef, str]]:
    programs = []
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            ctx = _ctx_param_name(node)
            if ctx is not None and _is_generator(node):
                programs.append((node, ctx))
    return programs


class _ProgramLinter:
    """Lints one SPMD program function."""

    def __init__(self, fn: ast.FunctionDef, ctx_name: str, filename: str):
        self.fn = fn
        self.ctx = ctx_name
        self.filename = filename
        self.diags: list[LintDiagnostic] = []
        self.token_vars: dict[str, str] = {}  # name -> "sync" | "barrier"
        self.tainted: set[str] = set()
        self.handle_assigns: dict[str, ast.AST] = {}

    # -- entry -----------------------------------------------------------

    def run(self) -> list[LintDiagnostic]:
        self._check_tokens()
        self._compute_taint()
        self._walk_body(self.fn.body, set(), False)
        self._check_unconsumed_handles()
        seen: set[tuple] = set()
        unique = []
        for d in sorted(self.diags, key=lambda d: (d.line, d.col, d.rule)):
            key = (d.rule, d.line, d.col)
            if key not in seen:
                seen.add(key)
                unique.append(d)
        return unique

    def _add(self, rule: str, node: ast.AST, message: str) -> None:
        self.diags.append(
            LintDiagnostic(
                rule=rule,
                message=message,
                file=self.filename,
                line=getattr(node, "lineno", self.fn.lineno),
                col=getattr(node, "col_offset", 0),
                function=self.fn.name,
            )
        )

    # -- helpers ---------------------------------------------------------

    def _ctx_call_kind(self, node: ast.AST, names: tuple[str, ...]) -> str | None:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == self.ctx
            and node.func.attr in names
        ):
            return node.func.attr
        return None

    def _is_pid_attr(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and node.attr == "pid"
            and isinstance(node.value, ast.Name)
            and node.value.id == self.ctx
        )

    def _tainted_expr(self, expr: ast.AST, tainted: set[str] | None = None) -> bool:
        tainted = self.tainted if tainted is None else tainted
        for node in _own_walk(expr):
            if self._is_pid_attr(node):
                return True
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in tainted
            ):
                return True
        return False

    @staticmethod
    def _target_names(target: ast.AST) -> Iterator[str]:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                yield node.id

    # -- pass 1: token discipline (SPMD001) -------------------------------

    def _check_tokens(self) -> None:
        parents: dict[ast.AST, ast.AST] = {}
        stack = [self.fn]
        while stack:
            node = stack.pop()
            for child in ast.iter_child_nodes(node):
                if isinstance(child, _NESTED_SCOPES):
                    continue
                parents[child] = node
                stack.append(child)
        yielded_names = {
            n.value.id
            for n in _own_walk(self.fn)
            if isinstance(n, ast.Yield) and isinstance(n.value, ast.Name)
        }
        for node in _own_walk(self.fn):
            kind = self._ctx_call_kind(node, _TOKENS)
            if kind is None:
                continue
            parent = parents.get(node)
            if isinstance(parent, ast.Yield):
                continue
            if (
                isinstance(parent, ast.Assign)
                and len(parent.targets) == 1
                and isinstance(parent.targets[0], ast.Name)
            ):
                name = parent.targets[0].id
                self.token_vars[name] = kind
                if name not in yielded_names:
                    self._add(
                        "SPMD001",
                        node,
                        f"token from {self.ctx}.{kind}() is assigned to "
                        f"{name!r} but never yielded",
                    )
                continue
            self._add(
                "SPMD001",
                node,
                f"{self.ctx}.{kind}() called without yielding its token; "
                "nothing synchronizes",
            )

    # -- pass 2: pid taint (feeds SPMD003/SPMD004) -------------------------

    def _compute_taint(self) -> None:
        tainted: set[str] = set()
        changed = True
        while changed:
            changed = False
            for node in _own_walk(self.fn):
                sources: list[tuple[ast.AST, Iterable[ast.AST]]] = []
                if isinstance(node, ast.Assign):
                    sources.append((node.value, node.targets))
                elif isinstance(node, ast.AugAssign):
                    sources.append((node.value, [node.target]))
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    sources.append((node.value, [node.target]))
                elif isinstance(node, ast.NamedExpr):
                    sources.append((node.value, [node.target]))
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    sources.append((node.iter, [node.target]))
                for value, targets in sources:
                    if not self._tainted_expr(value, tainted):
                        continue
                    for target in targets:
                        for name in self._target_names(target):
                            if name not in tainted:
                                tainted.add(name)
                                changed = True
        self.tainted = tainted

    # -- pass 3: path-sensitive walk (SPMD002/003/004/005) -----------------

    def _walk_body(self, stmts, unsynced: set[str], divergent: bool) -> set[str]:
        for stmt in stmts:
            unsynced = self._walk_stmt(stmt, unsynced, divergent)
        return unsynced

    def _walk_stmt(self, stmt, unsynced: set[str], divergent: bool) -> set[str]:
        if isinstance(stmt, _NESTED_SCOPES):
            return unsynced

        if isinstance(stmt, ast.Assign):
            if isinstance(stmt.value, ast.Yield):
                return self._walk_yield(stmt.value, unsynced, divergent)
            self._check_expr(stmt.value, unsynced, divergent)
            if self._ctx_call_kind(stmt.value, _PREFETCH):
                if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
                    name = stmt.targets[0].id
                    self.handle_assigns.setdefault(name, stmt.value)
                    return unsynced | {name}
            if (
                isinstance(stmt.value, ast.Name)
                and stmt.value.id in unsynced
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
            ):
                return unsynced | {stmt.targets[0].id}  # alias
            return unsynced

        if isinstance(stmt, ast.Expr):
            value = stmt.value
            if isinstance(value, ast.Yield):
                return self._walk_yield(value, unsynced, divergent)
            if isinstance(value, ast.YieldFrom):
                self._check_expr(value.value, unsynced, divergent)
                # The delegated sub-program is linted separately and is
                # assumed to sync what it prefetches.
                return set()
            if self._ctx_call_kind(value, _PREFETCH):
                self._add(
                    "SPMD005",
                    value,
                    f"{self.ctx}.{value.func.attr}() issued as a bare "
                    "statement; its handle is dropped",
                )
            self._check_expr(value, unsynced, divergent)
            return unsynced

        if isinstance(stmt, ast.If):
            self._check_expr(stmt.test, unsynced, divergent)
            inner = divergent or self._tainted_expr(stmt.test)
            u_then = self._walk_body(stmt.body, set(unsynced), inner)
            u_else = self._walk_body(stmt.orelse, set(unsynced), inner)
            return u_then | u_else

        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._check_expr(stmt.iter, unsynced, divergent)
            inner = divergent or self._tainted_expr(stmt.iter)
            u_body = self._walk_body(stmt.body, set(unsynced), inner)
            u_body |= self._walk_body(stmt.orelse, unsynced | u_body, inner)
            return unsynced | u_body

        if isinstance(stmt, ast.While):
            self._check_expr(stmt.test, unsynced, divergent)
            inner = divergent or self._tainted_expr(stmt.test)
            u_body = self._walk_body(stmt.body, set(unsynced), inner)
            u_body |= self._walk_body(stmt.orelse, unsynced | u_body, inner)
            return unsynced | u_body

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._check_expr(item.context_expr, unsynced, divergent)
            return self._walk_body(stmt.body, unsynced, divergent)

        if isinstance(stmt, ast.Try):
            u = self._walk_body(stmt.body, set(unsynced), divergent)
            for handler in stmt.handlers:
                u |= self._walk_body(handler.body, set(unsynced), divergent)
            u = self._walk_body(stmt.orelse, u, divergent)
            return self._walk_body(stmt.finalbody, u, divergent)

        # Return / Raise / Assert / AugAssign / Delete / match / ... :
        # no handle-state transitions, but their expressions must still
        # be scanned for premature .value reads and divergent calls.
        self._check_expr(stmt, unsynced, divergent)
        return unsynced

    def _walk_yield(self, node: ast.Yield, unsynced: set[str], divergent: bool) -> set[str]:
        inner = node.value
        kind = self._ctx_call_kind(inner, _TOKENS)
        if kind is None and isinstance(inner, ast.Name):
            kind = self.token_vars.get(inner.id)
        if kind == "sync":
            return set()
        if kind == "barrier":
            if divergent:
                self._add(
                    "SPMD003",
                    node,
                    "barrier yielded under pid-dependent control flow; "
                    "processors would diverge",
                )
            return unsynced
        if inner is not None:
            self._check_expr(inner, unsynced, divergent)
        return unsynced

    def _check_expr(self, expr: ast.AST, unsynced: set[str], divergent: bool) -> None:
        for node in _own_walk(expr):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "value"
                and isinstance(node.value, ast.Name)
                and node.value.id in unsynced
            ):
                self._add(
                    "SPMD002",
                    node,
                    f"prefetch handle {node.value.id!r} consumed with no "
                    f"`yield {self.ctx}.sync()` since issue on this path",
                )
            if divergent and self._ctx_call_kind(node, ("array",)):
                self._add(
                    "SPMD004",
                    node,
                    f"{self.ctx}.array() called under pid-dependent control "
                    "flow; allocation must be collective",
                )

    # -- pass 4: dead prefetches (SPMD005) ---------------------------------

    def _check_unconsumed_handles(self) -> None:
        uses = {
            n.id
            for n in _own_walk(self.fn)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
        }
        for name, node in self.handle_assigns.items():
            if name not in uses:
                self._add(
                    "SPMD005",
                    node,
                    f"prefetch handle {name!r} is never consumed",
                )


# -- public API -------------------------------------------------------------


def lint_source(source: str, filename: str = "<string>") -> list[LintDiagnostic]:
    """Lint every SPMD program found in ``source``."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            LintDiagnostic(
                rule="SPMD000",
                message=f"could not parse: {exc.msg}",
                file=filename,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                function="<module>",
            )
        ]
    diags: list[LintDiagnostic] = []
    for fn, ctx_name in _find_programs(tree):
        diags.extend(_ProgramLinter(fn, ctx_name, filename).run())
    return sorted(diags, key=lambda d: (d.line, d.col, d.rule))


def lint_callable(fn) -> list[LintDiagnostic]:
    """Lint a live SPMD program object (used by the pytest plugin).

    Returns ``[]`` when the source is unavailable (REPL definitions,
    builtins) or the callable is not recognizably an SPMD program.
    """
    try:
        source = inspect.getsource(fn)
        filename = inspect.getsourcefile(fn) or "<unknown>"
        _, first_line = inspect.getsourcelines(fn)
    except (OSError, TypeError):
        return []
    try:
        tree = ast.parse(textwrap.dedent(source))
    except SyntaxError:
        return []
    name = getattr(fn, "__name__", None)
    for node, ctx_name in _find_programs(tree):
        if node.name == name:
            offset = first_line - 1
            return [
                replace(d, line=d.line + offset)
                for d in _ProgramLinter(node, ctx_name, filename).run()
            ]
    return []


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Yield the ``.py`` files under ``paths`` (files or directories)."""
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py") if p.is_file())
        elif path.suffix == ".py" and path.is_file():
            yield path


def lint_paths(paths: Iterable[str]) -> list[LintDiagnostic]:
    """Lint all SPMD programs found under ``paths``."""
    diags: list[LintDiagnostic] = []
    for path in iter_python_files(paths):
        try:
            text = path.read_text()
        except OSError:
            continue
        diags.extend(lint_source(text, str(path)))
    return diags

"""ERR3xx: error-boundary hygiene rules.

The library's contract (``repro.utils.errors``) is that every
deliberate failure is a :class:`ReproError` subclass, so service and
worker boundaries can forward one typed family over the wire.  Two
things erode that contract silently: broad ``except`` blocks that
swallow the evidence, and ``raise ValueError`` deep in library code
that surfaces to a caller as an untyped builtin.
"""

from __future__ import annotations

import ast

from repro.checker.astutil import (
    dotted_name,
    enclosing_function_names,
    own_scope_walk,
)
from repro.checker.rules import LintDiagnostic, LintRule, register_rules

register_rules(
    LintRule(
        "ERR301",
        "broad except swallows the exception",
        "warning",
        "An `except Exception`/`except BaseException`/bare `except` "
        "whose body neither re-raises nor uses the caught exception "
        "hides real failures (including the typed replies a service "
        "boundary owes its caller). Narrow the type, re-raise, or "
        "consume the exception explicitly.",
    ),
    LintRule(
        "ERR302",
        "builtin exception raised instead of a ReproError",
        "error",
        "Raising a bare builtin (ValueError, RuntimeError, ...) breaks "
        "the library contract that callers -- including the wire "
        "protocol's error replies -- can catch ReproError alone. Raise "
        "a typed subclass from repro.utils.errors.",
    ),
)

_BROAD = {"Exception", "BaseException"}

#: Builtins that should be ReproError subclasses when raised by library
#: code.  Control-flow and programming-contract exceptions
#: (StopIteration, NotImplementedError, AssertionError, ...) stay legal.
_BUILTIN_RAISES = {
    "Exception",
    "ValueError",
    "TypeError",
    "KeyError",
    "IndexError",
    "RuntimeError",
    "OSError",
    "IOError",
}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for t in types:
        name = dotted_name(t)
        if name is not None and name.rsplit(".", 1)[-1] in _BROAD:
            return True
    return False


def _swallows(handler: ast.ExceptHandler) -> bool:
    for node in own_scope_walk(handler):
        if isinstance(node, ast.Raise):
            return False
        if (
            handler.name is not None
            and isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and node.id == handler.name
        ):
            return False
    return True


def check(tree: ast.AST, filename: str) -> list[LintDiagnostic]:
    diags: list[LintDiagnostic] = []
    owners = enclosing_function_names(tree)

    def add(rule: str, node: ast.AST, message: str) -> None:
        diags.append(
            LintDiagnostic(
                rule=rule,
                message=message,
                file=filename,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                function=owners.get(node, "<module>"),
            )
        )

    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and _is_broad(node) and _swallows(node):
            caught = "bare except" if node.type is None else ast.unparse(node.type)
            add(
                "ERR301",
                node,
                f"broad handler ({caught}) neither re-raises nor uses the "
                "exception; failures vanish here",
            )
        if isinstance(node, ast.Raise) and node.exc is not None:
            exc = node.exc
            target = exc.func if isinstance(exc, ast.Call) else exc
            name = dotted_name(target)
            if name in _BUILTIN_RAISES:
                add(
                    "ERR302",
                    node,
                    f"raise {name}: library errors must be ReproError "
                    "subclasses so boundaries can forward one typed family",
                )
    return diags

"""COST4xx: cost-model consistency rules.

The paper's experimental claims rest on the BDM cost model: every
remote word moved must be charged to the moving processor (and to the
serving owner's port).  Nothing *physically* stops a new primitive
from reaching into another processor's block without charging -- the
simulation still produces correct values, just flattering costs.
These rules make that drift a lint error instead of a silent skew in
EXPERIMENTS.md numbers.

The sanctioned escape hatch is *initial placement*: loading input data
into local blocks before timed phases begin is free by BSP/BDM
convention, and lives behind :meth:`GlobalArray.place` (in
``bdm/memory.py``, the one module exempt from COST401).
"""

from __future__ import annotations

import ast
from pathlib import PurePath

from repro.checker.astutil import (
    enclosing_function_names,
    iter_functions,
    own_scope_walk,
)
from repro.checker.rules import LintDiagnostic, LintRule, register_rules

register_rules(
    LintRule(
        "COST400",
        "comm primitive never charges the cost model",
        "error",
        "A function takes a processor (`proc`) and touches `._blocks` "
        "but never calls a charge_*/transfer primitive: remote traffic "
        "is moving without being charged, which skews every reported "
        "cost.",
    ),
    LintRule(
        "COST401",
        "direct ._blocks access outside the memory module",
        "warning",
        "Reaching into `GlobalArray._blocks` from outside bdm/memory.py "
        "bypasses the charging and hazard-checking in read/write. Use "
        "GlobalArray.place() for free initial placement, read/write for "
        "everything else.",
    ),
    LintRule(
        "COST402",
        "cost counters mutated outside the machine",
        "error",
        "Fields of a CostCounter are assigned directly (`*.cost.comm_s "
        "+= ...`) outside bdm/machine.py / bdm/cost.py; all charging "
        "must go through the Processor.charge_* primitives so the "
        "one-port serve accounting stays consistent.",
    ),
)

#: Modules allowed to touch the raw storage / counters.
_BLOCKS_EXEMPT_FILES = {"memory.py"}
_COST_EXEMPT_FILES = {"machine.py", "cost.py"}

_CHARGE_NAMES = {
    "charge_comp",
    "charge_copy",
    "charge_comm",
    "_charge_comm",
    "_charge_words_only",
    "_charge_server",
    "transfer",
}

_COST_FIELDS = {
    "comp_s",
    "comm_s",
    "serve_s",
    "words_moved",
    "words_served",
    "messages",
    "ops",
}


def _blocks_accesses(scope: ast.AST, *, include_self: bool) -> list[ast.Attribute]:
    out = []
    for node in own_scope_walk(scope):
        if isinstance(node, ast.Attribute) and node.attr == "_blocks":
            receiver = node.value
            if (
                not include_self
                and isinstance(receiver, ast.Name)
                and receiver.id == "self"
            ):
                continue
            out.append(node)
    return out


def _has_charge_call(scope: ast.AST) -> bool:
    for node in own_scope_walk(scope):
        if isinstance(node, ast.Call):
            func = node.func
            attr = func.attr if isinstance(func, ast.Attribute) else None
            name = func.id if isinstance(func, ast.Name) else None
            if (attr or name) in _CHARGE_NAMES:
                return True
    return False


def _takes_proc(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    args = list(fn.args.posonlyargs) + list(fn.args.args) + list(fn.args.kwonlyargs)
    return any(a.arg == "proc" for a in args)


def check(tree: ast.AST, filename: str) -> list[LintDiagnostic]:
    diags: list[LintDiagnostic] = []
    owners = enclosing_function_names(tree)
    basename = PurePath(filename).name

    def add(rule: str, node: ast.AST, message: str) -> None:
        diags.append(
            LintDiagnostic(
                rule=rule,
                message=message,
                file=filename,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                function=owners.get(node, "<module>"),
            )
        )

    for fn in iter_functions(tree):
        if not _takes_proc(fn):
            continue
        accesses = _blocks_accesses(fn, include_self=True)
        if accesses and not _has_charge_call(fn):
            add(
                "COST400",
                accesses[0],
                f"{fn.name!r} takes `proc` and touches ._blocks but never "
                "charges the cost model (no charge_*/transfer call)",
            )

    if basename not in _BLOCKS_EXEMPT_FILES:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "_blocks"
                and not (isinstance(node.value, ast.Name) and node.value.id == "self")
            ):
                add(
                    "COST401",
                    node,
                    "._blocks accessed directly; use GlobalArray.place() "
                    "(free initial placement) or read/write (charged)",
                )

    if basename not in _COST_EXEMPT_FILES:
        for node in ast.walk(tree):
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in _COST_FIELDS
                    and isinstance(target.value, ast.Attribute)
                    and target.value.attr == "cost"
                ):
                    add(
                        "COST402",
                        target,
                        f"cost counter .{target.attr} mutated directly; "
                        "charge through Processor.charge_* instead",
                    )
    return diags

"""OBS5xx: observability-hygiene rules.

The tracing layer opens spans imperatively -- ``h = recorder.begin(...)``
hands back a :class:`~repro.obs.runtime.SpanHandle` that records nothing
until ``h.finish()`` runs.  OBS501 encodes the obvious failure shape: a
handle whose ``finish()`` sits in straight-line code vanishes from the
trace whenever an exception takes the early exit, which is exactly the
path a trace exists to explain.  The guard test mirrors RES202: a
``finish()`` inside a ``finally`` or an exception handler survives every
edge; anything else does not.

OBS502 covers the other chronic bug of optional instrumentation: half
the emitting call sites take ``recorder=None`` (tracing off is the
default), so every ``recorder.count(...)`` needs a ``None`` guard.  An
unguarded emit works fine in the traced test and crashes in the
untraced production path -- the worst possible polarity.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.checker.astutil import iter_functions, own_scope_walk
from repro.checker.rules import LintDiagnostic, LintRule, register_rules

register_rules(
    LintRule(
        "OBS501",
        "span handle not finished on exception edges",
        "error",
        "A SpanHandle opened with .begin() is finished only in "
        "straight-line code (or never): any exception between begin and "
        "finish drops the span from the trace. Move finish() into a "
        "finally, or use the recorder.span() context manager.",
    ),
    LintRule(
        "OBS502",
        "emit on an optional recorder without a None guard",
        "warning",
        "An event is emitted on a parameter that defaults to None "
        "without checking it first: the call works under tracing and "
        "raises AttributeError on the untraced default path.",
    ),
)

#: Methods that emit events/samples when called on a recorder-like object.
_EMIT_METHODS = {
    "span", "begin", "instant", "count",
    "add_span", "add_instant", "add_count",
    "span_sink", "drain",
}


def _nodes_under(roots: list[ast.stmt]) -> set[ast.AST]:
    seen: set[ast.AST] = set()
    for root in roots:
        seen.update(own_scope_walk(root))
    return seen


# -- OBS501 ------------------------------------------------------------------

@dataclass
class _Handle:
    name: str
    node: ast.AST  # the .begin() call, for the diagnostic location


def _begin_call(value: ast.AST) -> ast.Call | None:
    """The ``<recv>.begin(...)`` call inside an assigned value, if any.

    Conditional forms (``x.begin(...) if traced else None``) open the
    span only sometimes, but when they do the closing obligation is the
    same, so the ternary arms are searched too.
    """
    if isinstance(value, ast.IfExp):
        return _begin_call(value.body) or _begin_call(value.orelse)
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Attribute)
        and value.func.attr == "begin"
    ):
        return value
    return None


def _finish_calls(scope: ast.AST, name: str) -> list[ast.Call]:
    out = []
    for node in own_scope_walk(scope):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "finish"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == name
        ):
            out.append(node)
    return out


def _escapes(scope: ast.AST, name: str, begin_node: ast.AST) -> bool:
    """True when the handle leaves this scope's custody.

    Returned, yielded, stored into an attribute/container, or passed as
    a call argument: someone else may finish it, so the file-local
    analysis stays silent.
    """
    for node in own_scope_walk(scope):
        if isinstance(node, (ast.Return, ast.Yield)) and node.value is not None:
            if any(
                isinstance(n, ast.Name) and n.id == name
                for n in ast.walk(node.value)
            ):
                return True
        if isinstance(node, ast.Call) and node is not begin_node:
            for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                if isinstance(arg, ast.Name) and arg.id == name:
                    return True
        if isinstance(node, ast.Assign) and any(
            not isinstance(t, ast.Name) for t in node.targets
        ):
            if any(
                isinstance(n, ast.Name)
                and n.id == name
                and isinstance(n.ctx, ast.Load)
                for n in ast.walk(node.value)
            ):
                return True
    return False


def _check_obs501(scope: ast.AST, scope_name: str,
                  filename: str) -> list[LintDiagnostic]:
    protected: set[ast.AST] = set()
    for node in own_scope_walk(scope):
        if isinstance(node, ast.Try):
            protected.update(_nodes_under(node.finalbody))
            for handler in node.handlers:
                protected.update(_nodes_under(handler.body))

    handles: list[_Handle] = []
    for node in own_scope_walk(scope):
        if not isinstance(node, ast.Assign):
            continue
        if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
            continue
        call = _begin_call(node.value)
        if call is not None:
            handles.append(_Handle(node.targets[0].id, call))

    diags = []
    for h in handles:
        finishes = _finish_calls(scope, h.name)
        if any(c in protected for c in finishes):
            continue
        if _escapes(scope, h.name, h.node):
            continue
        how = (
            "is finished only in straight-line code"
            if finishes
            else "is never finished in this scope"
        )
        diags.append(
            LintDiagnostic(
                rule="OBS501",
                message=(
                    f"span handle {h.name!r} {how}; an exception between "
                    "begin() and finish() drops the span from the trace"
                ),
                file=filename,
                line=h.node.lineno,
                col=h.node.col_offset,
                function=scope_name,
            )
        )
    return diags


# -- OBS502 ------------------------------------------------------------------

def _optional_params(fn: ast.AST) -> set[str]:
    """Parameter names whose default is the literal ``None``."""
    if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return set()
    out: set[str] = set()
    a = fn.args
    for params, defaults in (
        (a.posonlyargs + a.args, a.defaults),
        (a.kwonlyargs, a.kw_defaults),
    ):
        for param, default in zip(reversed(params), reversed(defaults)):
            if (
                default is not None
                and isinstance(default, ast.Constant)
                and default.value is None
            ):
                out.add(param.arg)
    return out


def _names_read(node: ast.AST) -> set[str]:
    return {
        n.id
        for n in ast.walk(node)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
    }


def _exits(stmts: list[ast.stmt]) -> bool:
    return bool(stmts) and isinstance(
        stmts[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


def _check_obs502(fn: ast.AST, filename: str) -> list[LintDiagnostic]:
    optional = _optional_params(fn)
    if not optional:
        return []
    # A reassignment (``rec = rec or WallRecorder()``) changes the
    # story mid-function; give up on that name rather than guess.
    for node in own_scope_walk(fn):
        for target in getattr(node, "targets", []):
            if isinstance(target, ast.Name):
                optional.discard(target.id)
    if not optional:
        return []

    diags: list[LintDiagnostic] = []

    def visit(node: ast.AST, guarded: frozenset) -> None:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _EMIT_METHODS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in optional
            and node.func.value.id not in guarded
        ):
            name = node.func.value.id
            diags.append(
                LintDiagnostic(
                    rule="OBS502",
                    message=(
                        f"emit call {name}.{node.func.attr}() on a "
                        f"parameter that defaults to None, outside any "
                        f"guard on {name!r}"
                    ),
                    file=filename,
                    line=node.lineno,
                    col=node.col_offset,
                    function=fn.name,
                )
            )
        if isinstance(node, (ast.If, ast.IfExp)):
            inner = guarded | _names_read(node.test)
            # ``if rec is None: return`` guards the rest of the block.
            if isinstance(node, ast.If) and _exits(node.body):
                nonlocal_guard.update(_names_read(node.test))
            visit(node.test, guarded)
            for child in [*node.body, *node.orelse] if isinstance(
                node, ast.If
            ) else [node.body, node.orelse]:
                visit(child, inner)
            return
        if isinstance(node, ast.BoolOp) and len(node.values) > 1:
            # ``rec and rec.count(...)`` short-circuits either way.
            visit(node.values[0], guarded)
            inner = guarded | _names_read(node.values[0])
            for value in node.values[1:]:
                visit(value, inner)
            return
        if isinstance(node, ast.Assert):
            nonlocal_guard.update(_names_read(node.test))
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            visit(child, guarded | frozenset(nonlocal_guard))

    nonlocal_guard: set[str] = set()
    for stmt in fn.body:
        visit(stmt, frozenset(nonlocal_guard))
    return diags


def check(tree: ast.AST, filename: str) -> list[LintDiagnostic]:
    diags: list[LintDiagnostic] = []

    scopes: list[tuple[ast.AST, str]] = [(tree, "<module>")]
    scopes += [(fn, fn.name) for fn in iter_functions(tree)]
    for scope, scope_name in scopes:
        diags.extend(_check_obs501(scope, scope_name, filename))

    for fn in iter_functions(tree):
        diags.extend(_check_obs502(fn, filename))
    return diags

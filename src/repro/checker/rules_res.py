"""RES2xx: resource-lifetime rules.

The process-parallel runtime owns resources the garbage collector
cannot reclaim for us: POSIX shared-memory segments persist in
``/dev/shm`` until someone calls ``unlink``, and worker pools hold OS
processes until terminated.  RES201 encodes the PR 4 bug shape: two
segments created back to back outside any guard, so a failure creating
the second leaked the first on every error path.

A creation is *guarded* when the factory call is a ``with`` item, is
wrapped by ``ExitStack.enter_context``/``callback``/``push``, or sits
inside a ``try`` whose ``finally`` releases the bound name (for shared
memory the ``finally`` must also ``unlink``, not just ``close`` --
closing keeps the segment alive in ``/dev/shm``).  Assignments to
attributes (``self._pool = ...``) are object-lifetime and out of scope
for this file-local analysis.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.checker.astutil import (
    call_name,
    iter_functions,
    own_scope_walk,
)
from repro.checker.rules import LintDiagnostic, LintRule, register_rules

register_rules(
    LintRule(
        "RES200",
        "unguarded resource with no visible release",
        "warning",
        "A pool/socket-like resource is created outside with/ExitStack/"
        "try-finally and this scope never releases it; processes or file "
        "descriptors outlive the function on every path.",
    ),
    LintRule(
        "RES201",
        "shared-memory segment leaks on error paths",
        "error",
        "A SharedMemory/SharedNDArray segment is created outside with/"
        "ExitStack/try-finally (or its finally never unlinks): any "
        "exception between creation and teardown strands the segment in "
        "/dev/shm until reboot.",
    ),
    LintRule(
        "RES202",
        "release does not post-dominate the acquire",
        "warning",
        "The resource's close/terminate sits in straight-line code, not "
        "a finally/with: an exception between acquire and release skips "
        "the teardown. Move the release to a finally or use a context "
        "manager.",
    ),
    LintRule(
        "RES203",
        "child process reap does not post-dominate the spawn",
        "warning",
        "A subprocess.Popen/multiprocessing.Process handle is waited/"
        "killed only in straight-line code: an exception between spawn "
        "and reap leaves a zombie (and possibly a live process group) "
        "behind. Reap in a finally, or own the handle on an object whose "
        "teardown kills and waits.",
    ),
)

#: Factory shapes: last attribute path component(s) -> resource kind.
_POOLISH = {"Pool", "ThreadPool", "PoolSupervisor"}
_SOCKETISH = {"socket.socket", "socket.create_connection"}
_SHM_METHODS = {"create", "from_array"}  # on a SharedNDArray-ish receiver
#: Child-process handles (subprocess.Popen, multiprocessing/ctx.Process):
#: the shard-supervisor shape -- spawned, then waited/killed somewhere
#: that an exception edge can skip.
_PROCESSISH = {"Popen", "Process"}

_RELEASE_METHODS = {
    "close", "unlink", "terminate", "shutdown", "release", "join",
    "wait", "kill",
}
_GUARD_WRAPPERS = {"enter_context", "callback", "push"}


@dataclass
class _Candidate:
    name: str
    node: ast.AST  # the factory call, for the diagnostic location
    kind: str  # "shm" | "pool" | "socket"
    statement: ast.stmt


def _factory_kind(call: ast.Call) -> str | None:
    name = call_name(call)
    if name is None:
        return None
    parts = name.split(".")
    last = parts[-1]
    if last == "SharedMemory":
        create = next((kw.value for kw in call.keywords if kw.arg == "create"), None)
        if isinstance(create, ast.Constant) and create.value is True:
            return "shm"
        return None
    if last in _SHM_METHODS and len(parts) >= 2 and parts[-2] == "SharedNDArray":
        return "shm"
    if last in _POOLISH:
        return "pool"
    if last in _PROCESSISH:
        return "process"
    if name in _SOCKETISH:
        return "socket"
    return None


def _release_calls(scope: ast.AST, name: str) -> list[ast.Call]:
    """Calls of the form ``<name>.close()`` / ``.unlink()`` / ... in scope."""
    out = []
    for node in own_scope_walk(scope):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _RELEASE_METHODS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == name
        ):
            out.append(node)
    return out


def _nodes_under(roots: list[ast.stmt]) -> set[ast.AST]:
    seen: set[ast.AST] = set()
    for root in roots:
        seen.update(own_scope_walk(root))
    return seen


def check(tree: ast.AST, filename: str) -> list[LintDiagnostic]:
    diags: list[LintDiagnostic] = []

    scopes: list[tuple[ast.AST, str]] = [(tree, "<module>")]
    scopes += [(fn, fn.name) for fn in iter_functions(tree)]

    for scope, scope_name in scopes:
        body = getattr(scope, "body", [])
        if not isinstance(body, list):
            continue

        # Statements lexically inside any try body / handler, keyed to
        # that Try node, so the finally-guard test knows its finalbody.
        guarding_try: dict[ast.AST, ast.Try] = {}
        protected_nodes: set[ast.AST] = set()
        for node in own_scope_walk(scope):
            if isinstance(node, ast.Try) and node.finalbody:
                for sub in _nodes_under(node.body):
                    guarding_try.setdefault(sub, node)
            if isinstance(node, ast.Try):
                protected_nodes.update(_nodes_under(node.finalbody))
                for handler in node.handlers:
                    protected_nodes.update(_nodes_under(handler.body))

        candidates: list[_Candidate] = []
        for node in own_scope_walk(scope):
            if not isinstance(node, ast.Assign):
                continue
            if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
                continue  # attribute/tuple targets: object lifetime or opaque
            kind = None
            if isinstance(node.value, ast.Call):
                kind = _factory_kind(node.value)
            if kind is None:
                continue
            candidates.append(_Candidate(node.targets[0].id, node.value, kind, node))

        for cand in candidates:
            # Guard 1: factory wrapped by enter_context()/callback()/push().
            # (Those shapes never look like a direct assignment, so reaching
            # here means the factory call itself was the assigned value.)
            # Guard 2: inside a try whose finally releases the name.
            guard = guarding_try.get(cand.node)
            if guard is not None:
                releases = [
                    c
                    for stmt in guard.finalbody
                    for c in _release_calls_in(stmt, cand.name)
                ]
                if releases and (
                    cand.kind != "shm"
                    or any(c.func.attr == "unlink" for c in releases)
                ):
                    continue
            releases = _release_calls(scope, cand.name)
            straightline = [c for c in releases if c not in protected_nodes]
            guarded_release = [c for c in releases if c in protected_nodes]
            if guarded_release and guard is None and cand.kind != "shm":
                # Released in someone's finally even though the acquire
                # itself is outside that try: the shm case still leaks
                # (creation can race the try), but for pools we accept it.
                continue
            if cand.kind == "shm":
                rule, message = "RES201", (
                    f"shared-memory segment {cand.name!r} is not guarded by "
                    "with/ExitStack or a try whose finally unlinks it; an "
                    "exception before teardown leaks it in /dev/shm"
                )
            elif cand.kind == "process" and straightline:
                rule, message = "RES203", (
                    f"child process {cand.name!r} is reaped only in "
                    "straight-line code; an exception between spawn and reap "
                    "leaves a zombie (or a live process group) behind"
                )
            elif straightline:
                rule, message = "RES202", (
                    f"{cand.name!r} is released only in straight-line code; "
                    "an exception between acquire and release skips teardown"
                )
            elif not releases:
                rule, message = "RES200", (
                    f"{cand.kind} resource {cand.name!r} is created without "
                    "with/ExitStack/try-finally and never released in this "
                    "scope"
                )
            else:
                continue
            diags.append(
                LintDiagnostic(
                    rule=rule,
                    message=message,
                    file=filename,
                    line=cand.node.lineno,
                    col=cand.node.col_offset,
                    function=scope_name,
                )
            )
    return diags


def _release_calls_in(stmt: ast.stmt, name: str) -> list[ast.Call]:
    out = []
    for node in own_scope_walk(stmt):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _RELEASE_METHODS
        ):
            receiver = node.func.value
            if isinstance(receiver, ast.Name) and receiver.id == name:
                out.append(node)
    return out

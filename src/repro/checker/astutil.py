"""Shared AST helpers for the checker's rule modules.

The rule families (ASYNC, RES, ERR, COST) all need the same few
primitives: resolving a call target to a dotted name, walking a scope
without descending into nested functions, and knowing which function a
node belongs to for diagnostics.  Keeping them here keeps each
``rules_*`` module a plain list of pattern checks.
"""

from __future__ import annotations

import ast
from typing import Iterator

#: Scope boundaries: walks stop here so a rule sees one function at a time.
SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def dotted_name(node: ast.AST) -> str | None:
    """Dotted path of a ``Name``/``Attribute`` chain, else ``None``.

    ``asyncio.open_unix_connection`` -> ``"asyncio.open_unix_connection"``;
    chains rooted in a call or subscript (``foo().bar``) resolve the
    reachable suffix with a ``?`` root so suffix matching still works.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif parts:
        parts.append("?")
    else:
        return None
    return ".".join(reversed(parts))


def call_name(node: ast.AST) -> str | None:
    """Dotted name of a call's target, else ``None``."""
    if isinstance(node, ast.Call):
        return dotted_name(node.func)
    return None


def has_keyword(call: ast.Call, name: str) -> bool:
    return any(kw.arg == name for kw in call.keywords)


def keyword_value(call: ast.Call, name: str) -> ast.AST | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def own_scope_walk(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root``'s subtree without entering nested function scopes."""
    stack: list[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, SCOPES):
                continue
            stack.append(child)


def iter_functions(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function definition in ``tree``, nested ones included."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def enclosing_function_names(tree: ast.AST) -> dict[ast.AST, str]:
    """Map every node to the name of its innermost enclosing function.

    Module-level nodes map to ``"<module>"``.  Used to fill the
    ``function`` field of diagnostics.
    """
    names: dict[ast.AST, str] = {}

    def visit(node: ast.AST, owner: str) -> None:
        names[node] = owner
        child_owner = owner
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            child_owner = node.name
        for child in ast.iter_child_nodes(node):
            visit(child, child_owner)

    visit(tree, "<module>")
    return names


def names_loaded(root: ast.AST) -> set[str]:
    """All plain names read anywhere under ``root`` (nested scopes too)."""
    return {
        n.id for n in ast.walk(root) if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
    }

"""In-process transport: shards are slices of ordinary ndarrays.

Today's single-address-space behavior, expressed through the transport
contract: the label array is one global ndarray and each shard is its
tile slice, so verb implementations are direct array operations through
the shared border helpers (:mod:`repro.darray.borders`).  This is the
reference the other transports must match bit-for-bit, and the tile
store the BDM simulator uses for its free initial placement.
"""

from __future__ import annotations

import numpy as np

from repro.core.border_graph import BorderSide
from repro.core.hooks import TileHooks, apply_hooks, create_tile_hooks
from repro.core.tiles import ProcessorGrid
from repro.darray.borders import collect_side, relabel_perimeters, side_nbytes
from repro.darray.transport import Transport
from repro.kernels import get as get_kernel, resolve_backend
from repro.utils.validation import check_image


class LocalTransport(Transport):
    """Tile shards as views into one in-process label array."""

    name = "local"

    def __init__(
        self,
        grid: ProcessorGrid,
        image: np.ndarray,
        *,
        connectivity: int = 8,
        grey: bool = False,
        kernel: str | None = None,
        **_ignored,
    ):
        super().__init__(grid)
        # A memmap (or any integer 2-D array) is acceptable; the local
        # transport materializes whole-tile slices anyway.
        self.image = check_image(np.asarray(image), square=False)
        self.connectivity = connectivity
        self.grey = grey
        self.kernel = resolve_backend(kernel)
        self._label_kernel = get_kernel("tile_label", backend=self.kernel)
        self._extract = get_kernel("border_extract", backend=self.kernel)
        self._relabel = get_kernel("relabel", backend=self.kernel)
        self._labels = np.zeros((grid.rows, grid.cols), dtype=np.int64)

    # -- verb 1: tile-local compute ---------------------------------------

    def label(self) -> dict[int, TileHooks]:
        hooks: dict[int, TileHooks] = {}
        for pid in range(self.grid.p):
            sl = self.grid.tile_slices(pid)
            r0, c0 = self.grid.tile_origin(pid)
            lab = self._label_kernel(
                self.image[sl],
                connectivity=self.connectivity,
                grey=self.grey,
                label_base=1,
                label_stride=self.grid.cols,
                row_offset=r0,
                col_offset=c0,
            )
            self._labels[sl] = lab
            hooks[pid] = create_tile_hooks(lab)
        return hooks

    def finalize(self, hooks: dict[int, TileHooks]) -> None:
        for pid in range(self.grid.p):
            sl = self.grid.tile_slices(pid)
            self._labels[sl] = apply_hooks(self._labels[sl], hooks[pid])

    def histogram(self, k: int) -> np.ndarray:
        tally = get_kernel("histogram", backend=self.kernel)
        out = np.zeros(k, dtype=np.int64)
        for pid in range(self.grid.p):
            out += tally(self.image[self.grid.tile_slices(pid)], k)
        return out

    # -- verb 2: border exchange -------------------------------------------

    def border(self, step_index, group_index, pids, edge) -> BorderSide:
        side = collect_side(
            self._labels, self.image, self.grid, pids, edge, self._extract
        )
        self.stats.border_bytes += side_nbytes(side)
        return side

    # -- verb 3: change publish/fetch --------------------------------------

    def publish(self, step_index, group_index, pids, alphas, betas) -> None:
        relabel_perimeters(
            self._labels, self.grid, pids, alphas, betas, self._relabel
        )
        self.stats.change_bytes += int(
            (alphas.nbytes + betas.nbytes) * len(pids)
        )

    # -- collection / tile store -------------------------------------------

    def gather(self) -> np.ndarray:
        return self._labels.copy()

    def tile(self, pid: int) -> np.ndarray:
        """Shard-local *image* tile (the simulator's free placement)."""
        return self.image[self.grid.tile_slices(pid)]

"""repro.darray: a distributed tile array with pluggable transports.

The paper's connected-components algorithm is already shaped for
distributed tiles: after the initial per-tile labeling, the only
communication in its ``log p`` merge rounds is (a) border pixels and
labels and (b) the sorted change arrays the group managers publish.
This subsystem makes that structure explicit: a
:class:`DistributedArray` owns the ``v x w`` grid of tile shards behind
a :class:`Transport` whose *only* verbs are tile-local compute, border
exchange, and change-array publish/fetch.

Three transports implement the contract (see ``docs/DARRAY.md``):

* ``local`` -- shards are in-process ndarrays (today's behavior);
* ``shmem`` -- shards live in per-tile POSIX shared-memory segments and
  every verb is a dispatched worker task with deadline/retry/respawn
  recovery and ``darray:border`` / ``darray:fetch`` fault sites;
* ``mmap`` -- out-of-core: pixels stream from a memory-mapped binary
  PGM, label tiles spill to disk, and only the perimeter labels stay
  resident through the merge rounds, so peak memory is one tile plus
  O(n) borders regardless of image size.

The engines (:func:`darray_components`, :func:`darray_histogram`)
produce labels bit-identical to the serial reference across every
transport x kernel-backend combination (tested).
"""

from repro.darray.array import DistributedArray
from repro.darray.engine import (
    DarrayResult,
    count_components,
    darray_components,
    darray_histogram,
)
from repro.darray.transport import (
    TRANSPORTS,
    Transport,
    TransportStats,
    open_transport,
)

__all__ = [
    "DistributedArray",
    "DarrayResult",
    "Transport",
    "TransportStats",
    "TRANSPORTS",
    "open_transport",
    "count_components",
    "darray_components",
    "darray_histogram",
]

"""Out-of-core transport: memory-mapped pixels, spill-file label shards.

Pixels stream from a memory-mapped binary PGM (``read_pnm(path,
mmap=True)``); label tiles live as raw int64 spill files in a spill
directory and pass through a bounded resident set (an LRU of at most
``resident_tiles`` tiles).  The paper's communication structure is
what makes this work: after the initial labeling pass, the ``log p``
merge rounds need only each tile's *perimeter labels* -- O(n) bytes
total -- so the transport keeps exactly those resident and never
touches a spilled tile again until the final hook-based relabel, which
streams tiles through the working set one at a time
(:func:`~repro.core.hooks.apply_hooks_isolated`).

Peak residency is therefore ``resident_tiles`` label tiles plus the
borders, independent of image size; ``stats.resident_highwater``
records the enforced maximum and the CI smoke asserts it under an RSS
cap.  :meth:`MmapTransport.gather` assembles the result as a read-only
``numpy.memmap`` over a spill-directory file, so even the output never
materializes in RAM.

A transport-owned spill directory is deleted on :meth:`close` (every
path out -- the leak scans assert no stray spill files); a caller-
provided ``spill_dir`` keeps its assembled ``labels.bin`` for
inspection.
"""

from __future__ import annotations

import pathlib
import shutil
import tempfile
from collections import OrderedDict

import numpy as np

from repro.core.border_graph import BorderSide
from repro.core.hooks import TileHooks, apply_hooks_isolated, create_tile_hooks
from repro.core.tiles import ProcessorGrid, perimeter_indices
from repro.darray.borders import edge_positions, side_nbytes
from repro.darray.transport import Transport
from repro.kernels import get as get_kernel, resolve_backend
from repro.utils.errors import ValidationError
from repro.utils.validation import check_positive


class MmapTransport(Transport):
    """Bounded-working-set shards over a memory-mapped image."""

    name = "mmap"

    def __init__(
        self,
        grid: ProcessorGrid,
        image,
        *,
        connectivity: int = 8,
        grey: bool = False,
        kernel: str | None = None,
        spill_dir=None,
        resident_tiles: int = 1,
        **_ignored,
    ):
        super().__init__(grid)
        self.connectivity = connectivity
        self.grey = grey
        self.kernel = resolve_backend(kernel)
        self._budget = check_positive("resident_tiles", resident_tiles)
        self._own_spill = spill_dir is None
        self._spill = pathlib.Path(
            tempfile.mkdtemp(prefix="repro-darray-") if self._own_spill else spill_dir
        )
        self._spill.mkdir(parents=True, exist_ok=True)
        self.image = self._open_image(image)
        if self.image.shape != (grid.rows, grid.cols):
            raise ValidationError(
                f"image shape {self.image.shape} does not match grid "
                f"{grid.rows}x{grid.cols}"
            )
        self._resident: OrderedDict[int, np.ndarray] = OrderedDict()
        self._dirty: set[int] = set()
        self._borders: dict[int, np.ndarray] = {}
        self._closed = False

    def _open_image(self, image) -> np.ndarray:
        """Memory-map the pixel source, staging non-P5 inputs first."""
        from repro.images.io import read_pnm, write_pgm

        if isinstance(image, (str, pathlib.Path)):
            try:
                return read_pnm(image, mmap=True)
            except ValidationError:
                # Not a binary PGM: decode once, stage as P5, then map.
                image = read_pnm(image)
        image = np.asarray(image)
        staged = self._spill / "image.pgm"
        write_pgm(staged, image)
        return read_pnm(staged, mmap=True)

    # -- residency ---------------------------------------------------------

    def _tile_path(self, pid: int) -> pathlib.Path:
        return self._spill / f"tile-{pid:05d}.bin"

    def _evict_one(self) -> None:
        pid, arr = self._resident.popitem(last=False)
        if pid in self._dirty:
            arr.tofile(self._tile_path(pid))
            self._dirty.discard(pid)
            self.stats.spill_writes += 1

    def _admit(self, pid: int, arr: np.ndarray, *, dirty: bool) -> None:
        """Make a tile resident, evicting to stay within the budget."""
        while len(self._resident) >= self._budget:
            self._evict_one()
        self._resident[pid] = arr
        if dirty:
            self._dirty.add(pid)
        self.stats.resident_highwater = max(
            self.stats.resident_highwater, len(self._resident)
        )

    def _checkout(self, pid: int) -> np.ndarray:
        """Resident label tile of ``pid``, loading from spill if needed."""
        if pid in self._resident:
            self._resident.move_to_end(pid)
            return self._resident[pid]
        h, w = self.grid.tile_shape(pid)
        arr = np.fromfile(self._tile_path(pid), dtype=np.int64).reshape(h, w)
        self.stats.spill_reads += 1
        self._admit(pid, arr, dirty=False)
        return arr

    def _image_tile(self, pid: int) -> np.ndarray:
        """One image tile, materialized from the mapped pixels."""
        return np.ascontiguousarray(
            self.image[self.grid.tile_slices(pid)], dtype=np.int32
        )

    # -- verb 1: tile-local compute ---------------------------------------

    def label(self) -> dict[int, TileHooks]:
        label_kernel = get_kernel("tile_label", backend=self.kernel)
        hooks: dict[int, TileHooks] = {}
        for pid in range(self.grid.p):
            r0, c0 = self.grid.tile_origin(pid)
            lab = label_kernel(
                self._image_tile(pid),
                connectivity=self.connectivity,
                grey=self.grey,
                label_base=1,
                label_stride=self.grid.cols,
                row_offset=r0,
                col_offset=c0,
            )
            hooks[pid] = create_tile_hooks(lab)
            h, w = lab.shape
            self._borders[pid] = lab.ravel()[perimeter_indices(h, w)].copy()
            self._admit(pid, lab, dirty=True)
        return hooks

    def finalize(self, hooks: dict[int, TileHooks]) -> None:
        for pid in range(self.grid.p):
            initial = self._checkout(pid)
            final = apply_hooks_isolated(initial, hooks[pid], self._borders[pid])
            self._resident[pid] = final
            self._dirty.add(pid)

    def histogram(self, k: int) -> np.ndarray:
        tally = get_kernel("histogram", backend=self.kernel)
        out = np.zeros(k, dtype=np.int64)
        for pid in range(self.grid.p):
            out += tally(self._image_tile(pid), k)
        return out

    # -- verb 2: border exchange -------------------------------------------

    def border(self, step_index, group_index, pids, edge) -> BorderSide:
        extract = get_kernel("border_extract", backend=self.kernel)
        lab_parts = []
        col_parts = []
        for pid in pids:
            h, w = self.grid.tile_shape(pid)
            lab_parts.append(self._borders[pid][edge_positions(h, w, edge)])
            col_parts.append(
                np.asarray(extract(self.image[self.grid.tile_slices(pid)], edge))
            )
        side = BorderSide(np.concatenate(lab_parts), np.concatenate(col_parts))
        self.stats.border_bytes += side_nbytes(side)
        return side

    # -- verb 3: change publish/fetch --------------------------------------

    def publish(self, step_index, group_index, pids, alphas, betas) -> None:
        relabel = get_kernel("relabel", backend=self.kernel)
        for pid in pids:
            self._borders[pid] = relabel(self._borders[pid], alphas, betas)
        self.stats.change_bytes += int((alphas.nbytes + betas.nbytes) * len(pids))

    # -- collection / lifecycle --------------------------------------------

    def gather(self) -> np.ndarray:
        """Assemble the labels into a read-only memmap, tile by tile."""
        for pid in list(self._resident):
            # Flush residency so the spill files are authoritative.
            self._resident.move_to_end(pid, last=False)
            self._evict_one()
        rows, cols = self.grid.rows, self.grid.cols
        out_path = self._spill / "labels.bin"
        itemsize = np.dtype(np.int64).itemsize
        with open(out_path, "wb") as fh:
            fh.truncate(rows * cols * itemsize)
            for pid in range(self.grid.p):
                h, w = self.grid.tile_shape(pid)
                tile = np.fromfile(self._tile_path(pid), dtype=np.int64)
                self.stats.spill_reads += 1
                tile = tile.reshape(h, w)
                r0, c0 = self.grid.tile_origin(pid)
                for i in range(h):
                    fh.seek(((r0 + i) * cols + c0) * itemsize)
                    fh.write(tile[i].tobytes())
        return np.memmap(out_path, dtype=np.int64, mode="r", shape=(rows, cols))

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._resident.clear()
        self._dirty.clear()
        self._borders.clear()
        # The image memmap holds the staged file open; drop it first.
        self.image = None
        if self._own_spill:
            shutil.rmtree(self._spill, ignore_errors=True)
        else:
            # Caller-owned directory: remove our shards, keep the
            # assembled labels for inspection.
            for path in self._spill.glob("tile-*.bin"):
                path.unlink(missing_ok=True)
            (self._spill / "image.pgm").unlink(missing_ok=True)

"""DistributedArray: a tile-sharded 2-D array behind a transport.

The user-facing handle of the subsystem.  A :class:`DistributedArray`
pairs a :class:`~repro.core.tiles.ProcessorGrid` with a
:class:`~repro.darray.transport.Transport` instance and exposes the
three verbs plus shard introspection; the engine
(:mod:`repro.darray.engine`) drives it through the paper's schedule.

It is also the placement facade the BDM simulator uses: ``place()``
opens a ``local`` transport over an in-memory image so the simulator's
free initial distribution reads tile shards through the same surface
the real transports implement.
"""

from __future__ import annotations

import numpy as np

from repro.core.border_graph import BorderSide
from repro.core.hooks import TileHooks
from repro.core.tiles import ProcessorGrid
from repro.darray.transport import Transport, TransportStats, open_transport


class DistributedArray:
    """A ``v x w`` grid of tile shards owned by a transport."""

    def __init__(self, grid: ProcessorGrid, transport: Transport):
        self.grid = grid
        self.transport = transport

    @classmethod
    def open(cls, name: str, grid: ProcessorGrid, image, **opts) -> "DistributedArray":
        """Open a registered transport over ``grid`` and ``image``."""
        return cls(grid, open_transport(name, grid, image, **opts))

    @classmethod
    def place(cls, image: np.ndarray, grid: ProcessorGrid) -> "DistributedArray":
        """In-process placement of an image's tiles (simulator seam)."""
        from repro.darray.local import LocalTransport

        return cls(grid, LocalTransport(grid, image))

    # -- shard introspection ------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return (self.grid.rows, self.grid.cols)

    @property
    def stats(self) -> TransportStats:
        return self.transport.stats

    def tile(self, pid: int) -> np.ndarray:
        """Shard-local image tile (only placements that expose one)."""
        return self.transport.tile(pid)

    # -- the three verbs, delegated -----------------------------------------

    def label(self) -> dict[int, TileHooks]:
        return self.transport.label()

    def finalize(self, hooks: dict[int, TileHooks]) -> None:
        self.transport.finalize(hooks)

    def histogram(self, k: int) -> np.ndarray:
        return self.transport.histogram(k)

    def border(self, step_index, group_index, pids, edge) -> BorderSide:
        return self.transport.border(step_index, group_index, tuple(pids), edge)

    def publish(self, step_index, group_index, pids, alphas, betas) -> None:
        self.transport.publish(step_index, group_index, tuple(pids), alphas, betas)

    # -- collection / lifecycle --------------------------------------------

    def gather(self) -> np.ndarray:
        return self.transport.gather()

    def close(self) -> None:
        self.transport.close()

    def __enter__(self) -> "DistributedArray":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

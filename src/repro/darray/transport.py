"""The transport contract: three verbs move a distributed tile array.

A :class:`Transport` owns the physical placement of a
:class:`~repro.core.tiles.ProcessorGrid`'s tile shards -- in-process
arrays, shared-memory segments, or spill files behind a memory-mapped
image.  The algorithm layer (:mod:`repro.darray.engine`) never touches
placement; everything it may ask of a transport is one of:

1. **tile-local compute** -- run a named local step (initial labeling,
   hook-based final relabel, histogram tally) on shards, where the
   shards live;
2. **border exchange** -- fetch one side of a merge border (labels +
   colors, in scan order) out of the owning shards;
3. **change publish/fetch** -- fan a solved change array out to the
   merged region's shards, which relabel their perimeters.

Everything else (the merge schedule, the border-graph solve, hook
bookkeeping) is transport-independent and lives in the engine.  The
verbs are deliberately those of the paper: the merge rounds move only
border pixels and change arrays, which is what makes the out-of-core
and multi-process placements drop-in.

Transports accumulate :class:`TransportStats`; the engine republishes
them as ``darray:*`` obs counters.
"""

from __future__ import annotations

import abc
import importlib
from dataclasses import dataclass

import numpy as np

from repro.core.border_graph import BorderSide
from repro.core.hooks import TileHooks
from repro.core.tiles import ProcessorGrid
from repro.utils.errors import ValidationError

#: Registered transports: name -> "module:Class" (resolved lazily, so
#: importing repro.darray does not drag in the multiprocessing runtime).
TRANSPORTS = {
    "local": "repro.darray.local:LocalTransport",
    "shmem": "repro.darray.shmem_transport:ShmemTransport",
    "mmap": "repro.darray.mmap_transport:MmapTransport",
}


@dataclass
class TransportStats:
    """Traffic and working-set accounting of one transport lifetime.

    ``border_bytes`` counts every byte of border labels+colors fetched
    (verb 2); ``change_bytes`` every byte of change array fanned out
    (verb 3, bytes x receiving tiles).  ``spill_reads`` /
    ``spill_writes`` count whole-tile transfers between residency and
    the spill directory (out-of-core transport only);
    ``resident_highwater`` is the maximum number of label tiles ever
    resident at once.
    """

    border_bytes: int = 0
    change_bytes: int = 0
    spill_reads: int = 0
    spill_writes: int = 0
    resident_highwater: int = 0


class Transport(abc.ABC):
    """Abstract placement of a grid's tile shards behind the three verbs.

    Concrete transports are constructed by :func:`open_transport` with
    the grid, the image source, and the algorithm options; they are
    context managers (``close`` must release every segment, spill file,
    and pool on *every* path out).
    """

    #: Registry name, overridden by each implementation.
    name = "abstract"

    def __init__(self, grid: ProcessorGrid):
        self.grid = grid
        self.stats = TransportStats()

    # -- verb 1: tile-local compute ---------------------------------------

    @abc.abstractmethod
    def label(self) -> dict[int, TileHooks]:
        """Initial per-tile labeling on every shard; returns the hooks.

        Each shard's labels use the paper's globally-offset convention
        ``(Iq + i) * cols + (Jr + j) + 1``; the transport stores them
        shard-locally and returns one :class:`TileHooks` per tile.
        """

    @abc.abstractmethod
    def finalize(self, hooks: dict[int, TileHooks]) -> None:
        """Hook-based final interior relabel, tile-local on every shard."""

    @abc.abstractmethod
    def histogram(self, k: int) -> np.ndarray:
        """Per-shard grey-level tallies, reduced to one ``k``-bin vector."""

    # -- verb 2: border exchange -------------------------------------------

    @abc.abstractmethod
    def border(
        self, step_index: int, group_index: int, pids: tuple[int, ...], edge: str
    ) -> BorderSide:
        """Fetch one side of a merge border from the owning shards.

        ``pids`` lists the side's tiles in scan order; ``edge`` names
        the tile edge they contribute.  Returns the concatenated labels
        and colors.
        """

    # -- verb 3: change-array publish/fetch --------------------------------

    @abc.abstractmethod
    def publish(
        self,
        step_index: int,
        group_index: int,
        pids: tuple[int, ...],
        alphas: np.ndarray,
        betas: np.ndarray,
    ) -> None:
        """Fan a change array out to the region's shards.

        Every shard in ``pids`` relabels its tile perimeter through the
        sorted ``(alpha, beta)`` pairs -- the paper's drastically
        limited updating.
        """

    # -- collection / lifecycle --------------------------------------------

    @abc.abstractmethod
    def gather(self) -> np.ndarray:
        """Assemble the full label array (diagnostic / result surface).

        The out-of-core transport returns a read-only ``numpy.memmap``
        so gathering does not materialize the image in RAM.
        """

    def close(self) -> None:
        """Release every resource; idempotent."""

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def open_transport(name: str, grid: ProcessorGrid, image, **opts) -> Transport:
    """Instantiate a registered transport over ``grid`` and ``image``.

    ``image`` is a 2-D array (any transport) or a PNM file path (the
    ``mmap`` transport streams it; the others read it up front).
    Option keys a transport does not use are ignored, so one call site
    can configure the whole matrix.
    """
    try:
        target = TRANSPORTS[name]
    except KeyError:
        raise ValidationError(
            f"unknown transport {name!r}; known: {sorted(TRANSPORTS)}"
        ) from None
    module_name, _, class_name = target.partition(":")
    cls = getattr(importlib.import_module(module_name), class_name)
    return cls(grid, image, **opts)

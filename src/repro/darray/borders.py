"""Border-exchange primitives shared across engines and transports.

These helpers are the concrete data movements behind the transport
contract's verbs 2 and 3 when tiles live in one address space: extract
one side of a merge border from a global label/color array, and apply a
change array to the perimeters of a region's tiles.  The in-process
``local`` transport and the hardened multiprocessing runtime
(:mod:`repro.runtime.parallel`) both consume them, so the two code
paths cannot drift; the ``shmem`` transport runs the same functions
inside pool workers against shard segments.

All functions take the kernel callables (``border_extract`` /
``relabel``) as arguments rather than resolving backends themselves --
backend policy belongs to the callers.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.core.border_graph import BorderSide
from repro.core.tiles import ProcessorGrid, edge_indices, perimeter_indices


def collect_side(
    labels: np.ndarray,
    image: np.ndarray,
    grid: ProcessorGrid,
    pids,
    edge: str,
    extract,
) -> BorderSide:
    """One border side's labels and colors from global arrays.

    ``pids`` lists the side's tiles in scan order; ``extract`` is the
    ``border_extract`` kernel.  Works on uniform and balanced tilings
    alike (tile shapes come from the grid, not from ``q``/``r``).
    """
    lab_parts = []
    col_parts = []
    for pid in pids:
        sl = grid.tile_slices(pid)
        lab_parts.append(extract(labels[sl], edge))
        col_parts.append(extract(image[sl], edge))
    return BorderSide(np.concatenate(lab_parts), np.concatenate(col_parts))


def relabel_perimeters(
    labels: np.ndarray,
    grid: ProcessorGrid,
    pids,
    alphas: np.ndarray,
    betas: np.ndarray,
    relabel,
) -> None:
    """Apply a change array to the tile perimeters of ``pids``, in place.

    The drastically-limited update: only border pixels are touched
    during the merge rounds.  ``relabel`` is the ``relabel`` kernel.
    """
    for pid in pids:
        r0, c0 = grid.tile_origin(pid)
        h, w = grid.tile_shape(pid)
        rows, cols = perimeter_coords(h, w)
        rows = rows + r0
        cols = cols + c0
        labels[rows, cols] = relabel(labels[rows, cols], alphas, betas)


@functools.lru_cache(maxsize=64)
def perimeter_coords(h: int, w: int) -> tuple[np.ndarray, np.ndarray]:
    """Row/column coordinates of a ``h x w`` tile's perimeter (cached)."""
    rows, cols = np.unravel_index(perimeter_indices(h, w), (h, w))
    rows.setflags(write=False)
    cols.setflags(write=False)
    return rows, cols


@functools.lru_cache(maxsize=256)
def edge_positions(h: int, w: int, edge: str) -> np.ndarray:
    """Positions of one edge *within* the sorted perimeter ordering.

    Lets a caller that keeps only perimeter-ordered label vectors
    resident (the out-of-core transport) slice an edge out of them in
    scan order: ``perimeter_labels[edge_positions(h, w, edge)]``.
    """
    perim = perimeter_indices(h, w)
    pos = np.searchsorted(perim, edge_indices(h, w, edge))
    pos.setflags(write=False)
    return pos


def side_nbytes(side: BorderSide) -> int:
    """Byte size of one fetched border side (labels + colors)."""
    return int(side.labels.nbytes + side.colors.nbytes)

"""Multiprocess transport: per-tile shared-memory shards, dispatched verbs.

Every tile gets two POSIX shared-memory segments (image shard + label
shard, :class:`~repro.runtime.shmem.SharedNDArray`); the verbs run as
tasks on a :class:`~repro.runtime.dispatch.PoolSupervisor` through the
deadline/retry/respawn dispatcher, so a crashed, hung, or corrupted
verb is recovered exactly like any other runtime task.  Two fault
sites instrument the communication verbs:

* ``darray:border`` fires in a border-exchange task; a ``corrupt`` spec
  damages the fetched labels, which validation converts into the
  retryable :class:`~repro.utils.errors.CorruptPayloadError`;
* ``darray:fetch`` fires in a change-array fetch/apply task (the
  region's shards fetching the published change list).

Faults fire at task entry -- before any shard mutation -- so a retried
attempt always starts from a consistent view, and the change-array
relabel is idempotent besides (one solve's alpha and beta sets are
disjoint).  Teardown is ExitStack-guaranteed: every path out of
:meth:`ShmemTransport.close` unlinks all ``2p`` segments, which the
``/dev/shm`` leak scans assert.
"""

from __future__ import annotations

import contextlib
import multiprocessing as mp
import os

import numpy as np

from repro.core.border_graph import BorderSide
from repro.core.hooks import TileHooks, apply_hooks, create_tile_hooks
from repro.core.tiles import ProcessorGrid
from repro.darray.borders import perimeter_coords, side_nbytes
from repro.darray.transport import Transport
from repro.faults.inject import corrupt_labels, fire, install_plan, validate_border_labels
from repro.faults.plan import FaultPlan
from repro.kernels import get as get_kernel, resolve_backend
from repro.obs.runtime import init_worker_sink, task_span, worker_instant
from repro.runtime.dispatch import PoolSupervisor, run_tasks
from repro.runtime.shmem import SharedNDArray
from repro.utils.errors import CorruptPayloadError
from repro.utils.validation import check_image

#: Worker-side shard attachments and options (set by the initializer).
_SHARD: dict = {}


def _shard_init(metas, opts, obs=None, plan: FaultPlan | None = None) -> None:
    """Pool initializer: attach every shard segment, install the plan."""
    init_worker_sink(obs)
    install_plan(plan)
    _SHARD["tiles"] = {
        pid: (SharedNDArray.attach(img_meta), SharedNDArray.attach(lab_meta))
        for pid, (img_meta, lab_meta) in metas.items()
    }
    _SHARD["opts"] = opts


def _shard_label(arg):
    """Verb 1: label one shard in place; return its hooks."""
    pid, attempt = arg
    with task_span(f"darray:label:t{pid}"):
        opts = _SHARD["opts"]
        img, lab = _SHARD["tiles"][pid]
        r0, c0 = opts["origins"][pid]
        result = get_kernel("tile_label", backend=opts["kernel"])(
            img.array,
            connectivity=opts["connectivity"],
            grey=opts["grey"],
            label_base=1,
            label_stride=opts["stride"],
            row_offset=r0,
            col_offset=c0,
        )
        lab.array[:] = result
        return pid, create_tile_hooks(result)


def _shard_border(arg):
    """Verb 2: extract one border side from the owning shards."""
    (step_index, group_index, pids, edge), attempt = arg
    spec = fire("darray:border", round=step_index, group=group_index, attempt=attempt)
    with task_span(f"darray:border:s{step_index}g{group_index}:{edge}"):
        opts = _SHARD["opts"]
        extract = get_kernel("border_extract", backend=opts["kernel"])
        lab_parts = []
        col_parts = []
        for pid in pids:
            img, lab = _SHARD["tiles"][pid]
            lab_parts.append(extract(lab.array, edge))
            col_parts.append(extract(img.array, edge))
        labels = np.concatenate(lab_parts)
        colors = np.concatenate(col_parts)
        if spec is not None:
            labels = corrupt_labels(labels)
        try:
            validate_border_labels(labels, site="darray:border")
        except CorruptPayloadError:
            worker_instant(
                "fault:corrupt-detected", round=step_index, group=group_index
            )
            raise
        return labels, colors


def _shard_fetch_changes(arg):
    """Verb 3: fetch the change array and relabel the region perimeters."""
    (step_index, group_index, pids, alphas, betas), attempt = arg
    fire("darray:fetch", round=step_index, group=group_index, attempt=attempt)
    with task_span(f"darray:fetch:s{step_index}g{group_index}"):
        opts = _SHARD["opts"]
        relabel = get_kernel("relabel", backend=opts["kernel"])
        for pid in pids:
            _img, lab = _SHARD["tiles"][pid]
            h, w = lab.array.shape
            rows, cols = perimeter_coords(h, w)
            lab.array[rows, cols] = relabel(lab.array[rows, cols], alphas, betas)
        return len(pids)


def _shard_final(arg):
    """Verb 1: hook-based final interior relabel of one shard."""
    (pid, hooks), attempt = arg
    with task_span(f"darray:final:t{pid}"):
        _img, lab = _SHARD["tiles"][pid]
        lab.array[:] = apply_hooks(lab.array, hooks)
        return pid


def _shard_hist(arg):
    """Verb 1: grey-level tally of one shard."""
    (pid, k), attempt = arg
    with task_span(f"darray:hist:t{pid}"):
        opts = _SHARD["opts"]
        img, _lab = _SHARD["tiles"][pid]
        return get_kernel("histogram", backend=opts["kernel"])(img.array, k)


def _pool_context():
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return mp.get_context("spawn")


class ShmemTransport(Transport):
    """Per-tile shared-memory shards served by a supervised worker pool."""

    name = "shmem"

    def __init__(
        self,
        grid: ProcessorGrid,
        image: np.ndarray,
        *,
        connectivity: int = 8,
        grey: bool = False,
        kernel: str | None = None,
        recorder=None,
        fault_plan: FaultPlan | None = None,
        timeout: float | None = None,
        max_retries: int | None = None,
        workers: int | None = None,
        **_ignored,
    ):
        super().__init__(grid)
        image = check_image(np.asarray(image), square=False)
        self.kernel = resolve_backend(kernel)
        self._recorder = recorder
        self._dispatch = dict(timeout=timeout, max_retries=max_retries, recorder=recorder)
        self._stack = contextlib.ExitStack()
        self._shards: dict[int, tuple[SharedNDArray, SharedNDArray]] = {}
        try:
            metas = {}
            for pid in range(grid.p):
                sl = grid.tile_slices(pid)
                img_shm = self._stack.enter_context(
                    SharedNDArray.from_array(np.ascontiguousarray(image[sl]))
                )
                lab_shm = self._stack.enter_context(
                    SharedNDArray.create(grid.tile_shape(pid), np.int64)
                )
                self._shards[pid] = (img_shm, lab_shm)
                metas[pid] = (img_shm.meta, lab_shm.meta)
            opts = {
                "origins": {pid: grid.tile_origin(pid) for pid in range(grid.p)},
                "stride": grid.cols,
                "connectivity": connectivity,
                "grey": grey,
                "kernel": self.kernel,
            }
            ctx = _pool_context()
            obs = None
            if recorder is not None:
                recorder.make_queue(ctx)
                obs = recorder.worker_init_args()
            if workers is None:
                workers = min(grid.p, max(1, os.cpu_count() or 1), 16)
            self._pool = self._stack.enter_context(
                PoolSupervisor(
                    ctx,
                    workers,
                    initializer=_shard_init,
                    initargs=(metas, opts, obs, fault_plan),
                    recorder=recorder,
                )
            )
        except BaseException:
            self._stack.close()
            raise

    # -- verb 1: tile-local compute ---------------------------------------

    def label(self) -> dict[int, TileHooks]:
        results = run_tasks(
            self._pool, _shard_label, range(self.grid.p),
            site="darray:label", **self._dispatch,
        )
        return dict(results)

    def finalize(self, hooks: dict[int, TileHooks]) -> None:
        run_tasks(
            self._pool, _shard_final,
            [(pid, hooks[pid]) for pid in range(self.grid.p)],
            site="darray:final", **self._dispatch,
        )

    def histogram(self, k: int) -> np.ndarray:
        partials = run_tasks(
            self._pool, _shard_hist, [(pid, k) for pid in range(self.grid.p)],
            site="darray:hist", **self._dispatch,
        )
        return np.sum(partials, axis=0, dtype=np.int64)

    # -- verb 2: border exchange -------------------------------------------

    def border(self, step_index, group_index, pids, edge) -> BorderSide:
        (payload,) = run_tasks(
            self._pool, _shard_border,
            [(step_index, group_index, tuple(pids), edge)],
            site="darray:border", **self._dispatch,
        )
        labels, colors = payload
        side = BorderSide(labels, colors)
        self.stats.border_bytes += side_nbytes(side)
        return side

    # -- verb 3: change publish/fetch --------------------------------------

    def publish(self, step_index, group_index, pids, alphas, betas) -> None:
        run_tasks(
            self._pool, _shard_fetch_changes,
            [(step_index, group_index, tuple(pids), alphas, betas)],
            site="darray:fetch", **self._dispatch,
        )
        self.stats.change_bytes += int((alphas.nbytes + betas.nbytes) * len(pids))

    # -- collection / lifecycle --------------------------------------------

    def gather(self) -> np.ndarray:
        out = np.zeros((self.grid.rows, self.grid.cols), dtype=np.int64)
        for pid, (_img, lab) in self._shards.items():
            out[self.grid.tile_slices(pid)] = lab.array
        return out

    def close(self) -> None:
        self._stack.close()
        self._shards.clear()

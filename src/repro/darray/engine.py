"""Transport-independent drivers: the paper's schedule over a DistributedArray.

:func:`darray_components` and :func:`darray_histogram` run the Bader--
JaJa algorithms against any registered transport: initial tile-local
labeling, ``log p`` border merges (fetch two sides, solve the border
graph, publish the change array to the merged region), hook-based
final interior update.  The *only* transport-facing operations are the
three verbs, so the same driver labels an in-process array, a grid of
shared-memory shards served by a supervised pool, or an out-of-core
spill set over a memory-mapped image -- bit-identically.

Observability: the driver wraps the phases in ``darray:label`` /
``darray:merge:r<t>`` / ``darray:final`` spans and republishes the
transport's traffic counters (border bytes, change bytes, spill
reads/writes, resident-tile highwater) as ``darray:*`` counts.

Fault handling matches the hardened runtime: an unrecoverable
:class:`~repro.utils.errors.FaultError` out of a transport degrades to
the serial kernel engine (``DegradedRunWarning`` + ``fault:degrade``
instant, bit-identical result) unless ``degrade=False``.
"""

from __future__ import annotations

import pathlib
import warnings
from dataclasses import dataclass

import numpy as np

from repro.core.border_graph import solve_border_merge
from repro.core.merge import merge_schedule
from repro.core.tiles import ProcessorGrid
from repro.darray.array import DistributedArray
from repro.darray.transport import TransportStats
from repro.kernels import get as get_kernel, resolve_backend
from repro.obs.events import (
    DARRAY_BORDER_BYTES,
    DARRAY_CHANGE_BYTES,
    DARRAY_FINAL,
    DARRAY_LABEL,
    DARRAY_RESIDENT_HIGHWATER,
    DARRAY_SPILL_READS,
    DARRAY_SPILL_WRITES,
    FAULT_DEGRADE,
)
from repro.obs.runtime import WallRecorder, instant_or_null, span_or_null
from repro.utils.errors import DegradedRunWarning, FaultError, ValidationError
from repro.utils.validation import check_image, check_power_of_two

#: Row-block size (in pixels) for the streaming component count.
_COUNT_BLOCK = 1 << 20


@dataclass
class DarrayResult:
    """Labeling result plus the transport's traffic accounting.

    ``labels`` is an ordinary ndarray for the in-memory transports and
    a read-only ``numpy.memmap`` for ``mmap`` (the result never
    materializes in RAM); ``n_components`` is computed by the streaming
    counter either way.
    """

    labels: np.ndarray
    n_components: int
    stats: TransportStats
    grid: ProcessorGrid


def count_components(labels: np.ndarray) -> int:
    """Number of components, streamed in O(1) memory over any label array.

    Exploits the seed-label convention: every component's final label
    is the globally-offset seed ``row * cols + col + 1`` of one of its
    own pixels, so counting pixels whose label equals their own seed
    counts components -- one row block at a time, which never pages a
    memory-mapped result in wholesale.
    """
    flat = labels.reshape(-1)
    total = 0
    for lo in range(0, flat.shape[0], _COUNT_BLOCK):
        block = np.asarray(flat[lo : lo + _COUNT_BLOCK])
        total += int(
            np.count_nonzero(
                block == np.arange(lo + 1, lo + 1 + block.shape[0], dtype=np.int64)
            )
        )
    return total


def _resolve_source(source, transport: str):
    """Split an image source into (shape, transport argument).

    A file path stays a path for ``mmap`` (the transport maps or stages
    it; only the header is read here) and is decoded for the in-memory
    transports.  An array is validated and passed through.
    """
    if isinstance(source, (str, pathlib.Path)):
        from repro.images.io import pnm_info, read_pnm

        if transport == "mmap":
            return pnm_info(source).shape, source
        image = read_pnm(source)
        return image.shape, image
    image = check_image(np.asarray(source), square=False)
    return image.shape, image


def _emit_stats(recorder: WallRecorder | None, stats: TransportStats) -> None:
    if recorder is None:
        return
    recorder.count(DARRAY_BORDER_BYTES, stats.border_bytes)
    recorder.count(DARRAY_CHANGE_BYTES, stats.change_bytes)
    recorder.count(DARRAY_SPILL_READS, stats.spill_reads)
    recorder.count(DARRAY_SPILL_WRITES, stats.spill_writes)
    recorder.count(DARRAY_RESIDENT_HIGHWATER, stats.resident_highwater)


def _degrade_or_raise(
    exc: FaultError, degrade: bool, recorder, what: str
) -> None:
    if recorder is not None:
        recorder.drain()
    if not degrade:
        raise exc
    warnings.warn(
        DegradedRunWarning(
            f"darray {what} degraded to the serial engine after "
            f"unrecoverable fault: {exc}"
        ),
        stacklevel=3,
    )
    instant_or_null(
        recorder, FAULT_DEGRADE, what=what, error=type(exc).__name__, detail=str(exc)
    )


def darray_components(
    source,
    *,
    p: int = 4,
    transport: str = "local",
    connectivity: int = 8,
    grey: bool = False,
    kernel: str | None = None,
    shape: tuple[int, int] | None = None,
    recorder: WallRecorder | None = None,
    fault_plan=None,
    timeout: float | None = None,
    max_retries: int | None = None,
    workers: int | None = None,
    spill_dir=None,
    resident_tiles: int = 1,
    degrade: bool = True,
) -> DarrayResult:
    """Connected components of ``source`` over a DistributedArray.

    ``source`` is a 2-D image array or a PNM file path; with
    ``transport="mmap"`` a binary-PGM path is memory-mapped and never
    read whole.  The grid uses the balanced (non-strict) partition, so
    any image at least ``v x w`` pixels works; ``shape`` forces an
    explicit ``(v, w)`` grid (e.g. ``(1, p)`` for strip tiling).

    ``fault_plan`` / ``timeout`` / ``max_retries`` / ``workers`` apply
    to the dispatched (``shmem``) transport; ``spill_dir`` /
    ``resident_tiles`` to the out-of-core one.  On an unrecoverable
    fault the call degrades to the serial kernel engine unless
    ``degrade=False`` (then the :class:`FaultError` propagates after
    transport teardown -- no segments or spill files leak).
    """
    image_shape, image = _resolve_source(source, transport)
    grid = ProcessorGrid(p, image_shape, strict=False, shape=shape)
    kernel = resolve_backend(kernel)
    try:
        with DistributedArray.open(
            transport,
            grid,
            image,
            connectivity=connectivity,
            grey=grey,
            kernel=kernel,
            recorder=recorder,
            fault_plan=fault_plan,
            timeout=timeout,
            max_retries=max_retries,
            workers=workers,
            spill_dir=spill_dir,
            resident_tiles=resident_tiles,
        ) as da:
            with span_or_null(recorder, DARRAY_LABEL):
                hooks = da.label()
            for si, step in enumerate(merge_schedule(grid)):
                edge_a, edge_b = step.edge_names
                with span_or_null(recorder, f"darray:merge:r{step.t}"):
                    for gi, group in enumerate(step.groups):
                        side_a = da.border(si, gi, group.side_a_pids, edge_a)
                        side_b = da.border(si, gi, group.side_b_pids, edge_b)
                        solve = solve_border_merge(
                            side_a, side_b, connectivity=connectivity, grey=grey
                        )
                        if len(solve.changes):
                            da.publish(
                                si,
                                gi,
                                group.region,
                                solve.changes.alphas,
                                solve.changes.betas,
                            )
            with span_or_null(recorder, DARRAY_FINAL):
                da.finalize(hooks)
            labels = da.gather()
            stats = da.stats
    except FaultError as exc:
        _degrade_or_raise(exc, degrade, recorder, "components")
        if isinstance(image, (str, pathlib.Path)):
            from repro.images.io import read_pnm

            image = read_pnm(image)
        labels = get_kernel("tile_label", backend=kernel)(
            image, connectivity=connectivity, grey=grey
        )
        stats = TransportStats()
        return DarrayResult(labels, count_components(labels), stats, grid)
    _emit_stats(recorder, stats)
    return DarrayResult(labels, count_components(labels), stats, grid)


def darray_histogram(
    source,
    k: int,
    *,
    p: int = 4,
    transport: str = "local",
    kernel: str | None = None,
    shape: tuple[int, int] | None = None,
    recorder: WallRecorder | None = None,
    fault_plan=None,
    timeout: float | None = None,
    max_retries: int | None = None,
    workers: int | None = None,
    spill_dir=None,
    resident_tiles: int = 1,
    degrade: bool = True,
) -> np.ndarray:
    """Grey-level histogram of ``source`` via per-shard tallies (verb 1)."""
    check_power_of_two("k", k)
    image_shape, image = _resolve_source(source, transport)
    grid = ProcessorGrid(p, image_shape, strict=False, shape=shape)
    kernel = resolve_backend(kernel)
    try:
        with DistributedArray.open(
            transport,
            grid,
            image,
            kernel=kernel,
            recorder=recorder,
            fault_plan=fault_plan,
            timeout=timeout,
            max_retries=max_retries,
            workers=workers,
            spill_dir=spill_dir,
            resident_tiles=resident_tiles,
        ) as da:
            with span_or_null(recorder, "darray:hist"):
                hist = da.histogram(k)
            stats = da.stats
    except FaultError as exc:
        _degrade_or_raise(exc, degrade, recorder, "histogram")
        if isinstance(image, (str, pathlib.Path)):
            from repro.images.io import read_pnm

            image = read_pnm(image)
        return get_kernel("histogram", backend=kernel)(np.asarray(image), k)
    hist = np.asarray(hist, dtype=np.int64)
    if int(hist.sum()) != grid.rows * grid.cols:
        raise ValidationError(
            f"histogram mass {int(hist.sum())} != pixel count "
            f"{grid.rows * grid.cols}"
        )
    _emit_stats(recorder, stats)
    return hist

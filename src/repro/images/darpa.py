"""A synthetic stand-in for the DARPA Image Understanding Benchmark.

The paper's grey-scale CC experiments (Figure 10, Table 2 "DARPA II
Image" rows) use the Second DARPA IU Benchmark test image: a 512x512,
256-grey-level rendering of a 2.5-D "mobile" -- dozens of rectangular
and elliptical parts at distinct intensities over a textured
background.  That image is not redistributable, so this module builds a
deterministic synthetic scene with comparable structure:

* every one of the 256 levels is populated (exercises all histogram
  bins),
* a few hundred connected components of widely varying size,
* large flat regions *and* fine texture (both extremes of border-graph
  density in the merge phases).

Histogramming cost is data-independent, and CC cost is governed by
component/border statistics of this order, so the substitution
preserves the benchmark's behaviour (see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ValidationError
from repro.utils.validation import check_positive

_DTYPE = np.int32


def darpa_like(n: int = 512, k: int = 256, seed: int = 1995) -> np.ndarray:
    """Generate the synthetic DARPA-like benchmark scene.

    Parameters
    ----------
    n:
        Image side (the benchmark is 512).
    k:
        Grey levels (the benchmark has 256); must be >= 8.
    seed:
        RNG seed; the default reproduces the scene used in
        EXPERIMENTS.md.
    """
    check_positive("n", n)
    if k < 8:
        raise ValidationError(f"darpa_like needs k >= 8, got {k}")
    rng = np.random.default_rng(seed)

    # Background: a gentle diagonal illumination gradient over the lower
    # quarter of the level range, plus banded texture.
    i = np.arange(n)[:, None]
    j = np.arange(n)[None, :]
    gradient = ((i + j) * (k // 4 - 2)) // max(1, 2 * (n - 1)) + 1
    texture = ((i // max(1, n // 64)) + (j // max(1, n // 64))) % 3
    img = (gradient + texture).astype(_DTYPE)

    # Mobile parts: rectangles and ellipses at distinct mid/high levels,
    # sized from large plates down to small fittings.
    n_parts = max(24, n // 4)
    for _part in range(n_parts):
        level = int(rng.integers(k // 4, k - 1))
        cy = int(rng.integers(0, n))
        cx = int(rng.integers(0, n))
        size = int(rng.integers(max(2, n // 64), max(3, n // 8)))
        if rng.random() < 0.5:
            h = max(1, int(size * rng.uniform(0.3, 1.0)))
            w = max(1, int(size * rng.uniform(0.3, 1.0)))
            r0, r1 = max(0, cy - h // 2), min(n, cy + (h + 1) // 2)
            c0, c1 = max(0, cx - w // 2), min(n, cx + (w + 1) // 2)
            img[r0:r1, c0:c1] = level
        else:
            ry = max(1.0, size * rng.uniform(0.3, 1.0) / 2)
            rx = max(1.0, size * rng.uniform(0.3, 1.0) / 2)
            mask = ((i - cy) / ry) ** 2 + ((j - cx) / rx) ** 2 <= 1.0
            img[mask] = level

    # Thin connecting rods (the mobile's strings): 1-2 pixel wide lines.
    n_rods = max(8, n // 32)
    for _rod in range(n_rods):
        level = int(rng.integers(k // 2, k))
        c0 = int(rng.integers(0, n))
        length = int(rng.integers(n // 8, n // 2))
        r0 = int(rng.integers(0, max(1, n - length)))
        if rng.random() < 0.5:
            img[r0 : r0 + length, c0 : min(n, c0 + 2)] = level
        else:
            img[c0 : min(n, c0 + 2), r0 : r0 + length] = level

    # Guarantee all k levels appear: stamp a k-pixel swatch strip.
    strip = np.arange(k, dtype=_DTYPE) % k
    reps = int(np.ceil(n / k))
    row = np.tile(strip, reps)[:n]
    img[-1, :] = row
    if n < k:
        # Small images cannot hold every level on one row; wrap onto
        # additional rows from the bottom up.
        needed = int(np.ceil(k / n))
        flat = np.tile(strip, int(np.ceil(needed * n / k)))[: needed * n]
        img[-needed:, :] = flat.reshape(needed, n)

    return img

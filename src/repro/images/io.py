"""Portable anymap (PNM) image I/O: PBM and PGM, ASCII and binary.

The DARPA benchmark image and most early-90s vision datasets ship as
PGM; this dependency-free reader/writer lets users run the library on
real files.  Supported formats:

* ``P1``/``P4`` -- PBM bitmaps (read as 0/1 images; note PBM's "1 =
  black" is mapped to foreground 1);
* ``P2``/``P5`` -- PGM greymaps, 8-bit (``0 < maxval <= 255``).

Deeper-than-8-bit greymaps are rejected on both read and write: the
engines' grey-level pipeline is defined over <= 256 levels, and a file
the writer can produce must always be one the reader accepts.

.. note:: **Compatibility break in 1.1.0.** Version 1.0.0 read and
   wrote 16-bit PGMs (``maxval`` up to 65535, big-endian samples).
   Those files never worked with the histogram/components pipeline
   (which requires < 256 grey levels), so 1.1.0 rejects them at the
   format layer with a clear :class:`ValidationError` instead of
   letting them fail deeper in the stack.  A 16-bit PGM written by
   1.0.0's ``write_pgm`` must be requantized to 8 bits (e.g. with
   ``pamdepth``/``convert``) before 1.1.0 can read it.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.utils.errors import ValidationError
from repro.utils.validation import check_image


def _read_tokens(data: bytes):
    """Yield whitespace-separated header tokens, skipping '#' comments."""
    pos = 0
    n = len(data)
    while pos < n:
        c = data[pos : pos + 1]
        if c.isspace():
            pos += 1
        elif c == b"#":
            while pos < n and data[pos : pos + 1] != b"\n":
                pos += 1
        else:
            start = pos
            while pos < n and not data[pos : pos + 1].isspace() and data[pos : pos + 1] != b"#":
                pos += 1
            yield data[start:pos], pos


def read_pnm(path) -> np.ndarray:
    """Read a PBM/PGM file into an int32 image array."""
    data = pathlib.Path(path).read_bytes()
    tokens = _read_tokens(data)

    def next_token() -> tuple[bytes, int]:
        try:
            return next(tokens)
        except StopIteration:
            raise ValidationError(f"truncated PNM header in {path}") from None

    magic, _ = next_token()
    if magic not in (b"P1", b"P2", b"P4", b"P5"):
        raise ValidationError(f"unsupported PNM magic {magic!r} (PBM/PGM only)")
    width_tok, _ = next_token()
    height_tok, pos = next_token()
    width, height = int(width_tok), int(height_tok)
    if width <= 0 or height <= 0:
        raise ValidationError(f"bad PNM dimensions {width}x{height}")

    if magic in (b"P2", b"P5"):
        maxval_tok, pos = next_token()
        try:
            maxval = int(maxval_tok)
        except ValueError:
            raise ValidationError(
                f"bad PGM maxval {maxval_tok!r}: not an integer"
            ) from None
        if maxval <= 0:
            raise ValidationError(f"bad PGM maxval {maxval}: must be positive")
        if maxval > 255:
            raise ValidationError(
                f"bad PGM maxval {maxval}: only 8-bit greymaps (maxval <= 255) "
                f"are supported (16-bit PGM support was removed in 1.1.0; "
                f"requantize the file to 8 bits first)"
            )
    else:
        maxval = 1

    if magic == b"P1":
        values = []
        rest = data[pos:].split()
        for chunk in rest:
            # P1 digits may run together ("0110"); split per character.
            values.extend(int(ch) for ch in chunk.decode("ascii"))
        img = np.array(values[: width * height], dtype=np.int32)
    elif magic == b"P2":
        values = [int(tok) for tok in data[pos:].split()]
        img = np.array(values[: width * height], dtype=np.int32)
    elif magic == b"P4":
        pos += 1  # single whitespace after header
        row_bytes = (width + 7) // 8
        raw = np.frombuffer(data[pos : pos + row_bytes * height], dtype=np.uint8)
        bits = np.unpackbits(raw.reshape(height, row_bytes), axis=1)[:, :width]
        img = bits.astype(np.int32).ravel()
    else:  # P5
        pos += 1
        raw = np.frombuffer(data[pos : pos + width * height], dtype=np.uint8)
        img = raw.astype(np.int32)

    if img.size != width * height:
        raise ValidationError(f"truncated PNM pixel data in {path}")
    return img.reshape(height, width)


def write_pgm(path, image: np.ndarray, *, binary: bool = True) -> None:
    """Write an 8-bit integer image as PGM (P5 binary or P2 ASCII)."""
    image = check_image(np.asarray(image), square=False)
    maxval = int(image.max(initial=0))
    if maxval > 255:
        raise ValidationError(
            f"PGM maxval limit exceeded: {maxval} (only 8-bit greymaps, "
            f"maxval <= 255, are supported)"
        )
    maxval = max(maxval, 1)
    height, width = image.shape
    path = pathlib.Path(path)
    if binary:
        header = f"P5\n{width} {height}\n{maxval}\n".encode("ascii")
        path.write_bytes(header + image.astype(np.uint8).tobytes())
    else:
        lines = [f"P2\n{width} {height}\n{maxval}"]
        for row in image:
            lines.append(" ".join(str(int(v)) for v in row))
        path.write_text("\n".join(lines) + "\n")


def write_pbm(path, image: np.ndarray, *, binary: bool = True) -> None:
    """Write a 0/1 image as PBM (P4 binary or P1 ASCII)."""
    image = check_image(np.asarray(image), square=False)
    if image.max(initial=0) > 1:
        raise ValidationError("PBM requires a 0/1 image")
    height, width = image.shape
    path = pathlib.Path(path)
    if binary:
        header = f"P4\n{width} {height}\n".encode("ascii")
        bits = np.packbits(image.astype(np.uint8), axis=1)
        path.write_bytes(header + bits.tobytes())
    else:
        lines = [f"P1\n{width} {height}"]
        for row in image:
            lines.append(" ".join(str(int(v)) for v in row))
        path.write_text("\n".join(lines) + "\n")

"""Portable anymap (PNM) image I/O: PBM and PGM, ASCII and binary.

The DARPA benchmark image and most early-90s vision datasets ship as
PGM; this dependency-free reader/writer lets users run the library on
real files.  Supported formats:

* ``P1``/``P4`` -- PBM bitmaps (read as 0/1 images; note PBM's "1 =
  black" is mapped to foreground 1);
* ``P2``/``P5`` -- PGM greymaps, 8-bit (``0 < maxval <= 255``).

Deeper-than-8-bit greymaps are rejected on both read and write: the
engines' grey-level pipeline is defined over <= 256 levels, and a file
the writer can produce must always be one the reader accepts.

Three entry points:

* :func:`pnm_info` -- a header-only probe (magic, dimensions, maxval,
  payload offset) that never touches pixel data, so callers can size
  buffers and pick a grid before committing to a read;
* :func:`read_pnm` -- the full reader.  Payload size is validated
  against the header: a truncated *or* padded file raises a typed
  :class:`~repro.utils.errors.ValidationError` instead of silently
  mis-shaping (truncation) or dropping bytes (padding);
* ``read_pnm(path, mmap=True)`` -- streaming ingestion for binary PGM
  (``P5``): returns a read-only ``numpy.memmap`` over the payload, so
  a gigapixel image costs address space, not RAM.  This is what the
  :mod:`repro.darray` out-of-core transport feeds on.

.. note:: **Compatibility break in 1.1.0.** Version 1.0.0 read and
   wrote 16-bit PGMs (``maxval`` up to 65535, big-endian samples).
   Those files never worked with the histogram/components pipeline
   (which requires < 256 grey levels), so 1.1.0 rejects them at the
   format layer with a clear :class:`ValidationError` instead of
   letting them fail deeper in the stack.  A 16-bit PGM written by
   1.0.0's ``write_pgm`` must be requantized to 8 bits (e.g. with
   ``pamdepth``/``convert``) before 1.1.0 can read it.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass

import numpy as np

from repro.utils.errors import ValidationError
from repro.utils.validation import check_image

#: How much of a file the header probe reads; PNM headers are a few
#: dozen bytes plus comments, so this is generous.
_HEADER_PROBE_BYTES = 64 << 10


def _read_tokens(data: bytes):
    """Yield whitespace-separated header tokens, skipping '#' comments."""
    pos = 0
    n = len(data)
    while pos < n:
        c = data[pos : pos + 1]
        if c.isspace():
            pos += 1
        elif c == b"#":
            while pos < n and data[pos : pos + 1] != b"\n":
                pos += 1
        else:
            start = pos
            while pos < n and not data[pos : pos + 1].isspace() and data[pos : pos + 1] != b"#":
                pos += 1
            yield data[start:pos], pos


@dataclass(frozen=True)
class PnmInfo:
    """Header facts of a PNM file, as :func:`pnm_info` probes them.

    ``data_offset`` is the byte offset of the first payload byte for the
    binary formats (``P4``/``P5``: one whitespace past the last header
    token); for the ASCII formats it marks where the sample tokens
    begin.  ``payload_bytes`` is the exact payload size the header
    implies for a binary file (``None`` for ASCII, whose payload size
    depends on formatting).
    """

    magic: str
    width: int
    height: int
    maxval: int
    data_offset: int

    @property
    def shape(self) -> tuple[int, int]:
        return self.height, self.width

    @property
    def binary(self) -> bool:
        return self.magic in ("P4", "P5")

    @property
    def payload_bytes(self) -> int | None:
        if self.magic == "P5":
            return self.width * self.height
        if self.magic == "P4":
            return (self.width + 7) // 8 * self.height
        return None


def _parse_header(data: bytes, path) -> PnmInfo:
    """Parse the PNM header at the front of ``data``."""
    tokens = _read_tokens(data)

    def next_token() -> tuple[bytes, int]:
        try:
            return next(tokens)
        except StopIteration:
            raise ValidationError(f"truncated PNM header in {path}") from None

    magic, _ = next_token()
    if magic not in (b"P1", b"P2", b"P4", b"P5"):
        raise ValidationError(f"unsupported PNM magic {magic!r} (PBM/PGM only)")
    width_tok, _ = next_token()
    height_tok, pos = next_token()
    try:
        width, height = int(width_tok), int(height_tok)
    except ValueError:
        raise ValidationError(
            f"bad PNM dimensions {width_tok!r}x{height_tok!r} in {path}"
        ) from None
    if width <= 0 or height <= 0:
        raise ValidationError(f"bad PNM dimensions {width}x{height}")

    if magic in (b"P2", b"P5"):
        maxval_tok, pos = next_token()
        try:
            maxval = int(maxval_tok)
        except ValueError:
            raise ValidationError(
                f"bad PGM maxval {maxval_tok!r}: not an integer"
            ) from None
        if maxval <= 0:
            raise ValidationError(f"bad PGM maxval {maxval}: must be positive")
        if maxval > 255:
            raise ValidationError(
                f"bad PGM maxval {maxval}: only 8-bit greymaps (maxval <= 255) "
                f"are supported (16-bit PGM support was removed in 1.1.0; "
                f"requantize the file to 8 bits first)"
            )
    else:
        maxval = 1

    # Binary payloads start exactly one whitespace byte past the last
    # header token; ASCII payloads are a token stream from here on.
    offset = pos + 1 if magic in (b"P4", b"P5") else pos
    return PnmInfo(
        magic=magic.decode("ascii"),
        width=width,
        height=height,
        maxval=maxval,
        data_offset=offset,
    )


def pnm_info(path) -> PnmInfo:
    """Header-only probe of a PBM/PGM file.

    Reads at most the first 64 KiB; pixel data is never touched, so the
    probe is O(1) in image size -- cheap enough to size a processor
    grid or a shard budget before deciding how to ingest the file.
    """
    with open(path, "rb") as fh:
        head = fh.read(_HEADER_PROBE_BYTES)
    return _parse_header(head, path)


def _check_payload(info: PnmInfo, found: int, path) -> None:
    """Reject a payload whose size disagrees with the header."""
    expected = info.payload_bytes
    if found != expected:
        kind = "truncated" if found < expected else "oversized"
        raise ValidationError(
            f"{kind} {info.magic} payload in {path}: header "
            f"{info.width}x{info.height} implies {expected} bytes, "
            f"found {found}"
        )


def read_pnm(path, *, mmap: bool = False) -> np.ndarray:
    """Read a PBM/PGM file into an int32 image array.

    With ``mmap=True`` the file must be a binary PGM (``P5``); the
    payload is returned as a read-only ``numpy.memmap`` of ``uint8``
    with the image's shape -- pixels stream from the page cache on
    access instead of being materialized up front.
    """
    if mmap:
        return _read_pnm_mmap(path)
    data = pathlib.Path(path).read_bytes()
    info = _parse_header(data, path)
    magic, width, height, pos = info.magic, info.width, info.height, info.data_offset

    if magic == "P1":
        values = []
        rest = data[pos:].split()
        for chunk in rest:
            # P1 digits may run together ("0110"); split per character.
            try:
                values.extend(int(ch) for ch in chunk.decode("ascii"))
            except (UnicodeDecodeError, ValueError):
                raise ValidationError(
                    f"bad P1 sample {chunk!r} in {path}"
                ) from None
        if len(values) != width * height:
            raise ValidationError(
                f"{'truncated' if len(values) < width * height else 'oversized'} "
                f"P1 payload in {path}: header {width}x{height} implies "
                f"{width * height} samples, found {len(values)}"
            )
        img = np.array(values, dtype=np.int32)
    elif magic == "P2":
        try:
            values = [int(tok) for tok in data[pos:].split()]
        except ValueError:
            raise ValidationError(f"non-integer P2 sample in {path}") from None
        if len(values) != width * height:
            raise ValidationError(
                f"{'truncated' if len(values) < width * height else 'oversized'} "
                f"P2 payload in {path}: header {width}x{height} implies "
                f"{width * height} samples, found {len(values)}"
            )
        img = np.array(values, dtype=np.int32)
    elif magic == "P4":
        _check_payload(info, len(data) - pos, path)
        row_bytes = (width + 7) // 8
        raw = np.frombuffer(data[pos:], dtype=np.uint8)
        bits = np.unpackbits(raw.reshape(height, row_bytes), axis=1)[:, :width]
        img = bits.astype(np.int32).ravel()
    else:  # P5
        _check_payload(info, len(data) - pos, path)
        raw = np.frombuffer(data[pos:], dtype=np.uint8)
        img = raw.astype(np.int32)

    if img.size != width * height:
        raise ValidationError(f"truncated PNM pixel data in {path}")
    return img.reshape(height, width)


def _read_pnm_mmap(path) -> np.ndarray:
    """Memory-map a binary PGM's payload (read-only ``uint8`` view)."""
    info = pnm_info(path)
    if info.magic != "P5":
        raise ValidationError(
            f"mmap ingestion requires a binary PGM (P5), got {info.magic} "
            f"in {path}; re-encode the file or read it without mmap"
        )
    size = pathlib.Path(path).stat().st_size
    _check_payload(info, size - info.data_offset, path)
    return np.memmap(
        path,
        dtype=np.uint8,
        mode="r",
        offset=info.data_offset,
        shape=info.shape,
    )


def write_pgm(path, image: np.ndarray, *, binary: bool = True) -> None:
    """Write an 8-bit integer image as PGM (P5 binary or P2 ASCII)."""
    image = check_image(np.asarray(image), square=False)
    maxval = int(image.max(initial=0))
    if maxval > 255:
        raise ValidationError(
            f"PGM maxval limit exceeded: {maxval} (only 8-bit greymaps, "
            f"maxval <= 255, are supported)"
        )
    maxval = max(maxval, 1)
    height, width = image.shape
    path = pathlib.Path(path)
    if binary:
        header = f"P5\n{width} {height}\n{maxval}\n".encode("ascii")
        path.write_bytes(header + image.astype(np.uint8).tobytes())
    else:
        lines = [f"P2\n{width} {height}\n{maxval}"]
        for row in image:
            lines.append(" ".join(str(int(v)) for v in row))
        path.write_text("\n".join(lines) + "\n")


def write_pbm(path, image: np.ndarray, *, binary: bool = True) -> None:
    """Write a 0/1 image as PBM (P4 binary or P1 ASCII)."""
    image = check_image(np.asarray(image), square=False)
    if image.max(initial=0) > 1:
        raise ValidationError("PBM requires a 0/1 image")
    height, width = image.shape
    path = pathlib.Path(path)
    if binary:
        header = f"P4\n{width} {height}\n".encode("ascii")
        bits = np.packbits(image.astype(np.uint8), axis=1)
        path.write_bytes(header + bits.tobytes())
    else:
        lines = [f"P1\n{width} {height}"]
        for row in image:
            lines.append(" ".join(str(int(v)) for v in row))
        path.write_text("\n".join(lines) + "\n")

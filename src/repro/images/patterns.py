"""The nine scalable binary test patterns of Figure 1.

Foreground pixels have value 1, background 0, any size ``n``.  The bar
patterns (images 1-4) and the concentric circles / spiral extend with
the image size; the cross, disc, and corner squares scale with it --
matching the paper's note that "images 1-4, 7, and 9 [are] augmented to
the needed image size, while images 5, 6, and 8 [are] scaled".

All generators are deterministic and vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ValidationError
from repro.utils.validation import check_positive

_DTYPE = np.int32


def _bar_thickness(n: int, thickness: int | None) -> int:
    """Default bar thickness: n/16, at least 1."""
    if thickness is None:
        thickness = max(1, n // 16)
    if thickness < 1:
        raise ValidationError(f"thickness must be >= 1, got {thickness}")
    return thickness


def _grid(n: int) -> tuple[np.ndarray, np.ndarray]:
    idx = np.arange(n)
    return idx[:, None], idx[None, :]


def horizontal_bars(n: int, thickness: int | None = None) -> np.ndarray:
    """Image 1: alternating full-width horizontal bars."""
    check_positive("n", n)
    t = _bar_thickness(n, thickness)
    i, _ = _grid(n)
    return np.broadcast_to(((i // t) % 2 == 0), (n, n)).astype(_DTYPE)


def vertical_bars(n: int, thickness: int | None = None) -> np.ndarray:
    """Image 2: alternating full-height vertical bars."""
    check_positive("n", n)
    t = _bar_thickness(n, thickness)
    _, j = _grid(n)
    return np.broadcast_to(((j // t) % 2 == 0), (n, n)).astype(_DTYPE)


def forward_diagonal_bars(n: int, thickness: int | None = None) -> np.ndarray:
    """Image 3: bars slanting like '/' (constant ``i + j`` stripes)."""
    check_positive("n", n)
    t = _bar_thickness(n, thickness)
    i, j = _grid(n)
    return (((i + j) // t) % 2 == 0).astype(_DTYPE)


def backward_diagonal_bars(n: int, thickness: int | None = None) -> np.ndarray:
    """Image 4: bars slanting like '\\' (constant ``i - j`` stripes)."""
    check_positive("n", n)
    t = _bar_thickness(n, thickness)
    i, j = _grid(n)
    return ((((i - j) + 2 * n) // t) % 2 == 0).astype(_DTYPE)


def cross(n: int, arm_fraction: float = 0.125) -> np.ndarray:
    """Image 5: a centred plus sign whose arms span the full image."""
    check_positive("n", n)
    if not (0.0 < arm_fraction <= 0.5):
        raise ValidationError("arm_fraction must be in (0, 0.5]")
    half = max(1, int(round(n * arm_fraction / 2)))
    c = n / 2.0
    i, j = _grid(n)
    band_i = np.abs(i + 0.5 - c) <= half
    band_j = np.abs(j + 0.5 - c) <= half
    return (band_i | band_j).astype(_DTYPE)


def filled_disc(n: int, radius_fraction: float = 0.375) -> np.ndarray:
    """Image 6: a filled disc centred in the image."""
    check_positive("n", n)
    if not (0.0 < radius_fraction <= 0.5):
        raise ValidationError("radius_fraction must be in (0, 0.5]")
    c = (n - 1) / 2.0
    r = n * radius_fraction
    i, j = _grid(n)
    return (((i - c) ** 2 + (j - c) ** 2) <= r * r).astype(_DTYPE)


def concentric_circles(n: int, ring_width: int | None = None) -> np.ndarray:
    """Image 7: concentric rings with thickness (alternating annuli)."""
    check_positive("n", n)
    w = _bar_thickness(n, ring_width)
    c = (n - 1) / 2.0
    i, j = _grid(n)
    dist = np.sqrt((i - c) ** 2 + (j - c) ** 2)
    rings = ((dist / w).astype(np.int64) % 2 == 1) & (dist <= n / 2.0)
    return rings.astype(_DTYPE)


def four_corner_squares(n: int, side_fraction: float = 0.25, inset_fraction: float = 0.125) -> np.ndarray:
    """Image 8: four filled squares inset from the four corners."""
    check_positive("n", n)
    side = max(1, int(round(n * side_fraction)))
    inset = max(0, int(round(n * inset_fraction)))
    if inset + side > n - inset and n > 1:
        raise ValidationError("squares would overlap: reduce side or inset fraction")
    img = np.zeros((n, n), dtype=_DTYPE)
    for (r0, c0) in (
        (inset, inset),
        (inset, n - inset - side),
        (n - inset - side, inset),
        (n - inset - side, n - inset - side),
    ):
        r0 = max(0, r0)
        c0 = max(0, c0)
        img[r0 : r0 + side, c0 : c0 + side] = 1
    return img


def dual_spiral(n: int, windings: float = 3.0, fill_fraction: float = 0.5) -> np.ndarray:
    """Image 9: the "difficult" dual-spiral pattern (Stout).

    Two interleaved Archimedean spiral arms wound around the centre;
    each arm is one long snaking connected component (under both 4- and
    8-connectivity), which maximizes label propagation distance for
    divide-and-conquer CC algorithms.  The arms are rasterized by
    stamping overlapping discs along the parametric curve, so they stay
    connected at every image size.

    Parameters
    ----------
    windings:
        Full turns per arm (constant as ``n`` grows, so arm thickness
        scales with ``n`` and the run count per row stays bounded).
    fill_fraction:
        Fraction of the radial period the two arms jointly occupy
        (< 1 keeps them separated).
    """
    check_positive("n", n)
    if windings <= 0:
        raise ValidationError("windings must be positive")
    if not (0.0 < fill_fraction < 1.0):
        raise ValidationError("fill_fraction must be in (0, 1)")
    img = np.zeros((n, n), dtype=_DTYPE)
    c = (n - 1) / 2.0
    rmax = n / 2.0 - 1.0
    if rmax <= 1.0:
        img[:] = 1  # degenerate tiny image: all foreground
        return img
    pitch = rmax / windings
    # Each arm's stroke: half its share of the period, at least 1 px wide.
    radius = max(1.0, pitch * fill_fraction / 4.0)

    disc_r = int(np.ceil(radius))
    dy, dx = np.mgrid[-disc_r : disc_r + 1, -disc_r : disc_r + 1]
    disc = (dy * dy + dx * dx) <= radius * radius

    theta_end = 2.0 * np.pi * windings
    for phase0 in (0.0, np.pi):  # the two interleaved arms
        theta = np.pi  # start off-centre so the arms never meet
        while theta <= theta_end:
            r = pitch * theta / (2.0 * np.pi)
            y = c + r * np.sin(theta + phase0)
            x = c + r * np.cos(theta + phase0)
            _stamp(img, disc, int(round(y)), int(round(x)), disc_r)
            # Advance so consecutive stamps are < 1 px apart.
            theta += min(0.2, 0.9 / max(r, 1.0))
    return img


def _stamp(img: np.ndarray, disc: np.ndarray, y: int, x: int, disc_r: int) -> None:
    """Paint a disc mask centred at (y, x), clipped to the image."""
    n = img.shape[0]
    y0, y1 = max(0, y - disc_r), min(n, y + disc_r + 1)
    x0, x1 = max(0, x - disc_r), min(n, x + disc_r + 1)
    if y0 >= y1 or x0 >= x1:
        return
    sub = disc[y0 - (y - disc_r) : y1 - (y - disc_r), x0 - (x - disc_r) : x1 - (x - disc_r)]
    img[y0:y1, x0:x1] |= sub


#: Figure 1's catalogue, in paper order (1-based indices).
BINARY_TEST_IMAGES = {
    1: horizontal_bars,
    2: vertical_bars,
    3: forward_diagonal_bars,
    4: backward_diagonal_bars,
    5: cross,
    6: filled_disc,
    7: concentric_circles,
    8: four_corner_squares,
    9: dual_spiral,
}


def binary_test_image(index: int, n: int) -> np.ndarray:
    """Generate Figure 1's test image ``index`` (1..9) at size ``n x n``."""
    if index not in BINARY_TEST_IMAGES:
        raise ValidationError(f"test image index must be 1..9, got {index}")
    return BINARY_TEST_IMAGES[index](n)

"""Test image generation (Section 3 of the paper).

The paper evaluates on nine automatically generated, scalable binary
patterns (Figure 1) plus the 512x512 256-grey-level DARPA Image
Understanding Benchmark image (Figure 2).  The DARPA image itself is
not redistributable, so :func:`~repro.images.darpa.darpa_like` builds a
deterministic synthetic scene with comparable statistics (see
DESIGN.md, substitutions table).
"""

from repro.images.patterns import (
    horizontal_bars,
    vertical_bars,
    forward_diagonal_bars,
    backward_diagonal_bars,
    cross,
    filled_disc,
    concentric_circles,
    four_corner_squares,
    dual_spiral,
    binary_test_image,
    BINARY_TEST_IMAGES,
)
from repro.images.greyscale import (
    grey_ramp,
    grey_quadrants,
    random_greyscale,
    grey_bars,
    checkerboard,
    site_percolation,
)
from repro.images.darpa import darpa_like
from repro.images.io import read_pnm, write_pbm, write_pgm

__all__ = [
    "horizontal_bars",
    "vertical_bars",
    "forward_diagonal_bars",
    "backward_diagonal_bars",
    "cross",
    "filled_disc",
    "concentric_circles",
    "four_corner_squares",
    "dual_spiral",
    "binary_test_image",
    "BINARY_TEST_IMAGES",
    "grey_ramp",
    "grey_quadrants",
    "random_greyscale",
    "grey_bars",
    "checkerboard",
    "site_percolation",
    "darpa_like",
    "read_pnm",
    "write_pbm",
    "write_pgm",
]

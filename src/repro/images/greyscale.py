"""Grey-scale test images for histogramming and grey-level CC.

``k`` grey levels are ``0 .. k-1``; level 0 is background by the
paper's convention.  ``grey_ramp`` and ``grey_bars`` have closed-form
histograms, which backs the paper's histogram verification criterion
("for regular patterns, it is easy to verify that each H[i]/n^2 equals
the percentage of area that grey level i covers").
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ValidationError
from repro.utils.validation import check_positive, check_power_of_two

_DTYPE = np.int32


def grey_ramp(n: int, k: int) -> np.ndarray:
    """Columns sweep the grey levels left to right.

    Column ``j`` has level ``j * k // n``; when ``k`` divides ``n``
    every level covers exactly ``n/k`` columns, i.e. ``H[i] = n^2/k``.
    """
    check_positive("n", n)
    check_power_of_two("k", k)
    j = np.arange(n)
    levels = (j * k) // n
    return np.broadcast_to(levels[None, :], (n, n)).astype(_DTYPE)


def grey_bars(n: int, k: int, thickness: int | None = None) -> np.ndarray:
    """Horizontal bars cycling through all ``k`` grey levels."""
    check_positive("n", n)
    check_power_of_two("k", k)
    if thickness is None:
        thickness = max(1, n // max(k, 16))
    if thickness < 1:
        raise ValidationError(f"thickness must be >= 1, got {thickness}")
    i = np.arange(n)
    levels = (i // thickness) % k
    return np.broadcast_to(levels[:, None], (n, n)).astype(_DTYPE)


def grey_quadrants(n: int, k: int) -> np.ndarray:
    """Four quadrants at four distinct levels (``k >= 4``).

    Levels used: 0 (background quadrant), 1, k//2, k-1 -- exercising
    both ends of the level range with exactly known areas.
    """
    check_positive("n", n)
    check_power_of_two("k", k)
    if k < 4:
        raise ValidationError(f"grey_quadrants needs k >= 4, got {k}")
    img = np.zeros((n, n), dtype=_DTYPE)
    h = n // 2
    img[:h, h:] = 1
    img[h:, :h] = k // 2
    img[h:, h:] = k - 1
    return img


def checkerboard(n: int, cell: int = 1, levels: tuple[int, int] = (0, 1)) -> np.ndarray:
    """Checkerboard of two levels; ``cell=1`` maximizes component count."""
    check_positive("n", n)
    check_positive("cell", cell)
    i = np.arange(n)[:, None] // cell
    j = np.arange(n)[None, :] // cell
    board = ((i + j) % 2).astype(_DTYPE)
    lo, hi = levels
    return np.where(board == 0, _DTYPE(lo), _DTYPE(hi))


def site_percolation(n: int, p_occ: float, seed: int = 0) -> np.ndarray:
    """Random site-percolation lattice: each site occupied (1) with
    probability ``p_occ``, else background (0).

    The percolation workload the paper cites; pair with the library's
    CC to find clusters (see ``examples/percolation.py``).
    """
    check_positive("n", n)
    if not (0.0 <= p_occ <= 1.0):
        raise ValidationError(f"p_occ must be in [0, 1], got {p_occ}")
    rng = np.random.default_rng(seed)
    return (rng.random((n, n)) < p_occ).astype(_DTYPE)


def random_greyscale(n: int, k: int, seed: int = 0, background_fraction: float = 0.0) -> np.ndarray:
    """Uniform random levels, optionally with extra 0-background mass.

    Deterministic for a given ``seed``.  With ``background_fraction``
    > 0 that fraction of pixels is forced to level 0, giving grey-CC a
    percolation-style workload.
    """
    check_positive("n", n)
    check_power_of_two("k", k)
    if not (0.0 <= background_fraction < 1.0):
        raise ValidationError("background_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    img = rng.integers(0, k, size=(n, n), dtype=np.int64).astype(_DTYPE)
    if background_fraction > 0.0:
        mask = rng.random((n, n)) < background_fraction
        img[mask] = 0
    return img

"""Wall-clock recording for the real multiprocessing runtime.

The :mod:`repro.runtime` backend runs genuine OS processes, so spans
must be collected *across* processes: the driver owns a
:class:`WallRecorder`, hands its queue to the pool initializer, and
workers push tagged tuples through it (``time.perf_counter`` is
CLOCK_MONOTONIC, comparable across processes on the same host).  After
the pool joins, :meth:`WallRecorder.drain` folds the worker events into
the driver's :class:`~repro.obs.events.EventLog` on a common epoch.

Two event kinds cross the queue: ``("span", name, pid, t0, t1, cat,
args)`` for worker task intervals (the older six-field form without
``args`` is still accepted), and ``("instant", name, pid, t, args)``
for point events (e.g. a corrupt payload detected inside a merge
task).  The driver side additionally records instants and counter
samples directly -- the fault-recovery dispatcher
(:mod:`repro.runtime.dispatch`) uses those for its timeout / retry /
respawn / degradation events.

When a :class:`~repro.obs.trace.TraceContext` is active (request
tracing, see :mod:`repro.obs.trace`), :func:`task_span` records the
trace ids in the span's ``args`` and nests kernel-level
:func:`~repro.obs.trace.traced_span` calls under it -- that is how one
service request stays a single connected span tree across the process
boundary.

Worker-side helpers are module-level so they survive pickling into pool
workers: :func:`init_worker_sink` (called from the pool initializer),
:func:`task_span` (wraps one worker task), and :func:`worker_instant`.
All are no-ops when no recorder is wired in, so the runtime costs
nothing when unobserved.
"""

from __future__ import annotations

import contextlib
import os
import time
from typing import Iterator

from repro.obs import trace as _trace
from repro.obs.events import CAT_ROUND, CAT_SETUP, CAT_TASK, EventLog

#: Worker-process side of the span pipe: (queue, epoch) or None.
_SINK: tuple | None = None


class SpanHandle:
    """An open driver-side span; :meth:`finish` closes and records it.

    For intervals that cannot wrap a single ``with`` block (a request
    span opened in one callback and closed in another).  The OBS501
    checker rule demands the :meth:`finish` sit on a ``finally`` edge,
    for the same reason a file handle's ``close`` must: an exception
    between ``begin`` and ``finish`` would otherwise silently drop the
    span from the trace.
    """

    __slots__ = ("_recorder", "name", "lane", "cat", "args", "t0", "_done")

    def __init__(self, recorder: "WallRecorder", name: str,
                 lane: int | str, cat: str, args: dict):
        self._recorder = recorder
        self.name = name
        self.lane = lane
        self.cat = cat
        self.args = args
        self.t0 = time.perf_counter()
        self._done = False

    def finish(self, **extra_args) -> None:
        """Record the span now; idempotent (later calls are no-ops)."""
        if self._done:
            return
        self._done = True
        t1 = time.perf_counter()
        args = {**self.args, **extra_args} if extra_args else self.args
        self._recorder.log.add_span(
            self.name,
            self.lane,
            self.t0 - self._recorder.epoch,
            t1 - self.t0,
            cat=self.cat,
            **args,
        )


class WallRecorder:
    """Collects wall-clock events from the driver and pool workers.

    Driver-side spans go straight into :attr:`log` (lane ``"driver"``);
    worker events arrive through the queue created by :meth:`make_queue`
    and are folded in by :meth:`drain`.  All times are seconds since
    the recorder's construction.
    """

    def __init__(self, *, source: str = "multiprocessing"):
        self.log = EventLog(clock="wall", source=source)
        self.epoch = time.perf_counter()
        self._queue = None

    # -- driver side -------------------------------------------------------

    @contextlib.contextmanager
    def span(
        self, name: str, *, lane: int | str = "driver", cat: str = CAT_ROUND, **args
    ) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            t1 = time.perf_counter()
            self.log.add_span(name, lane, t0 - self.epoch, t1 - t0, cat=cat, **args)

    def begin(
        self, name: str, *, lane: int | str = "driver", cat: str = CAT_ROUND, **args
    ) -> SpanHandle:
        """Open a span to be closed later by :meth:`SpanHandle.finish`."""
        return SpanHandle(self, name, lane, cat, args)

    def span_sink(self):
        """A :mod:`repro.obs.trace` span sink writing to this log.

        Driver-side :func:`~repro.obs.trace.traced_span` spans land on
        the ``"driver"`` lane with their trace ids in ``args``.
        """
        def _sink(name: str, t0: float, t1: float, cat: str, args: dict) -> None:
            self.log.add_span(name, "driver", t0 - self.epoch, t1 - t0,
                              cat=cat, **args)
        return _sink

    def instant(self, name: str, *, lane: int | str = "driver", **args) -> None:
        """Record a driver-side point event (fault/retry/degrade...)."""
        self.log.add_instant(name, lane, time.perf_counter() - self.epoch, **args)

    def count(self, name: str, value: float, *, lane: int | str = "total") -> None:
        """Record one counter sample at the current wall time."""
        self.log.add_count(name, value, lane=lane, t_s=time.perf_counter() - self.epoch)

    def make_queue(self, ctx):
        """Create the cross-process event queue on context ``ctx``."""
        self._queue = ctx.SimpleQueue()
        return self._queue

    def worker_init_args(self) -> tuple | None:
        """What the pool initializer needs to wire up the worker sink."""
        if self._queue is None:
            return None
        return (self._queue, self.epoch)

    def drain(self) -> int:
        """Fold queued worker events into the log; returns how many."""
        if self._queue is None:
            return 0
        n = 0
        while not self._queue.empty():
            msg = self._queue.get()
            if msg[0] == "span":
                args = msg[6] if len(msg) > 6 else {}
                _, name, pid, t0, t1, cat = msg[:6]
                self.log.add_span(name, pid, t0 - self.epoch, t1 - t0,
                                  cat=cat, **args)
            elif msg[0] == "instant":
                _, name, pid, t, args = msg
                self.log.add_instant(name, pid, t - self.epoch, **args)
            n += 1
        return n

    @property
    def worker_lanes(self) -> list[int]:
        """Distinct worker OS pids observed so far (after :meth:`drain`)."""
        return [lane for lane in self.log.lanes() if isinstance(lane, int)]

    def fault_events(self) -> list:
        """All recorded fault-category instants (``fault:*`` names)."""
        return [i for i in self.log.instants if i.name.startswith("fault:")]


# -- worker side -------------------------------------------------------------


def init_worker_sink(args: tuple | None) -> None:
    """Install the span sink in a pool worker (from the initializer).

    ``args`` is :meth:`WallRecorder.worker_init_args`; ``None`` leaves
    recording off.  Also emits a ``worker:init`` span so every worker
    process appears in the trace even if task scheduling starves it.
    """
    global _SINK
    if args is None:
        _SINK = None
        _trace.set_span_sink(None)
        return
    queue, epoch = args
    _SINK = (queue, epoch)
    now = time.perf_counter()
    queue.put(("span", "worker:init", os.getpid(), now, now, CAT_SETUP, {}))

    # Kernel-level traced_span calls in this worker flow back through
    # the same queue, so one request's spans stay in one log.
    def _worker_trace_sink(name: str, t0: float, t1: float,
                           cat: str, span_args: dict) -> None:
        queue.put(("span", name, os.getpid(), t0, t1, cat, span_args))

    _trace.set_span_sink(_worker_trace_sink)


@contextlib.contextmanager
def task_span(name: str, *, cat: str = CAT_TASK, **args) -> Iterator[None]:
    """Record one worker task span (no-op without an installed sink).

    When a trace context is active the span carries the context's ids
    and a fresh child context is current inside the scope, so kernel
    spans recorded underneath parent to this task span.
    """
    if _SINK is None:
        yield
        return
    queue, _epoch = _SINK
    ctx = _trace.current()
    child = ctx.child() if ctx is not None else None
    token = _trace._CURRENT.set(child) if child is not None else None
    t0 = time.perf_counter()
    try:
        yield
    finally:
        t1 = time.perf_counter()
        if token is not None:
            _trace._CURRENT.reset(token)
        merged = {**(child.span_args() if child is not None else {}), **args}
        queue.put(("span", name, os.getpid(), t0, t1, cat, merged))


def worker_instant(name: str, **args) -> None:
    """Record a worker-side point event (no-op without a sink)."""
    if _SINK is None:
        return
    queue, _epoch = _SINK
    queue.put(("instant", name, os.getpid(), time.perf_counter(), args))


def span_or_null(recorder: WallRecorder | None, name: str, *,
                 cat: str = CAT_ROUND, **args):
    """Driver-side span when ``recorder`` is set, else a null context."""
    if recorder is None:
        return contextlib.nullcontext()
    return recorder.span(name, cat=cat, **args)


def instant_or_null(recorder: WallRecorder | None, name: str, **args) -> None:
    """Driver-side instant when ``recorder`` is set, else nothing."""
    if recorder is not None:
        recorder.instant(name, **args)

"""Wall-clock recording for the real multiprocessing runtime.

The :mod:`repro.runtime` backend runs genuine OS processes, so spans
must be collected *across* processes: the driver owns a
:class:`WallRecorder`, hands its queue to the pool initializer, and
workers push tagged tuples through it (``time.perf_counter`` is
CLOCK_MONOTONIC, comparable across processes on the same host).  After
the pool joins, :meth:`WallRecorder.drain` folds the worker events into
the driver's :class:`~repro.obs.events.EventLog` on a common epoch.

Two event kinds cross the queue: ``("span", name, pid, t0, t1, cat)``
for worker task intervals, and ``("instant", name, pid, t, args)`` for
point events (e.g. a corrupt payload detected inside a merge task).
The driver side additionally records instants and counter samples
directly -- the fault-recovery dispatcher
(:mod:`repro.runtime.dispatch`) uses those for its timeout / retry /
respawn / degradation events.

Worker-side helpers are module-level so they survive pickling into pool
workers: :func:`init_worker_sink` (called from the pool initializer),
:func:`task_span` (wraps one worker task), and :func:`worker_instant`.
All are no-ops when no recorder is wired in, so the runtime costs
nothing when unobserved.
"""

from __future__ import annotations

import contextlib
import os
import time
from typing import Iterator

from repro.obs.events import CAT_ROUND, CAT_SETUP, CAT_TASK, EventLog

#: Worker-process side of the span pipe: (queue, epoch) or None.
_SINK: tuple | None = None


class WallRecorder:
    """Collects wall-clock events from the driver and pool workers.

    Driver-side spans go straight into :attr:`log` (lane ``"driver"``);
    worker events arrive through the queue created by :meth:`make_queue`
    and are folded in by :meth:`drain`.  All times are seconds since
    the recorder's construction.
    """

    def __init__(self, *, source: str = "multiprocessing"):
        self.log = EventLog(clock="wall", source=source)
        self.epoch = time.perf_counter()
        self._queue = None

    # -- driver side -------------------------------------------------------

    @contextlib.contextmanager
    def span(
        self, name: str, *, lane: int | str = "driver", cat: str = CAT_ROUND
    ) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            t1 = time.perf_counter()
            self.log.add_span(name, lane, t0 - self.epoch, t1 - t0, cat=cat)

    def instant(self, name: str, *, lane: int | str = "driver", **args) -> None:
        """Record a driver-side point event (fault/retry/degrade...)."""
        self.log.add_instant(name, lane, time.perf_counter() - self.epoch, **args)

    def count(self, name: str, value: float, *, lane: int | str = "total") -> None:
        """Record one counter sample at the current wall time."""
        self.log.add_count(name, value, lane=lane, t_s=time.perf_counter() - self.epoch)

    def make_queue(self, ctx):
        """Create the cross-process event queue on context ``ctx``."""
        self._queue = ctx.SimpleQueue()
        return self._queue

    def worker_init_args(self) -> tuple | None:
        """What the pool initializer needs to wire up the worker sink."""
        if self._queue is None:
            return None
        return (self._queue, self.epoch)

    def drain(self) -> int:
        """Fold queued worker events into the log; returns how many."""
        if self._queue is None:
            return 0
        n = 0
        while not self._queue.empty():
            msg = self._queue.get()
            if msg[0] == "span":
                _, name, pid, t0, t1, cat = msg
                self.log.add_span(name, pid, t0 - self.epoch, t1 - t0, cat=cat)
            elif msg[0] == "instant":
                _, name, pid, t, args = msg
                self.log.add_instant(name, pid, t - self.epoch, **args)
            n += 1
        return n

    @property
    def worker_lanes(self) -> list[int]:
        """Distinct worker OS pids observed so far (after :meth:`drain`)."""
        return [lane for lane in self.log.lanes() if isinstance(lane, int)]

    def fault_events(self) -> list:
        """All recorded fault-category instants (``fault:*`` names)."""
        return [i for i in self.log.instants if i.name.startswith("fault:")]


# -- worker side -------------------------------------------------------------


def init_worker_sink(args: tuple | None) -> None:
    """Install the span sink in a pool worker (from the initializer).

    ``args`` is :meth:`WallRecorder.worker_init_args`; ``None`` leaves
    recording off.  Also emits a ``worker:init`` span so every worker
    process appears in the trace even if task scheduling starves it.
    """
    global _SINK
    if args is None:
        _SINK = None
        return
    queue, epoch = args
    _SINK = (queue, epoch)
    now = time.perf_counter()
    queue.put(("span", "worker:init", os.getpid(), now, now, CAT_SETUP))


@contextlib.contextmanager
def task_span(name: str, *, cat: str = CAT_TASK) -> Iterator[None]:
    """Record one worker task span (no-op without an installed sink)."""
    if _SINK is None:
        yield
        return
    queue, _epoch = _SINK
    t0 = time.perf_counter()
    try:
        yield
    finally:
        queue.put(("span", name, os.getpid(), t0, time.perf_counter(), cat))


def worker_instant(name: str, **args) -> None:
    """Record a worker-side point event (no-op without a sink)."""
    if _SINK is None:
        return
    queue, _epoch = _SINK
    queue.put(("instant", name, os.getpid(), time.perf_counter(), args))


def span_or_null(recorder: WallRecorder | None, name: str, *, cat: str = CAT_ROUND):
    """Driver-side span when ``recorder`` is set, else a null context."""
    if recorder is None:
        return contextlib.nullcontext()
    return recorder.span(name, cat=cat)


def instant_or_null(recorder: WallRecorder | None, name: str, **args) -> None:
    """Driver-side instant when ``recorder`` is set, else nothing."""
    if recorder is not None:
        recorder.instant(name, **args)

"""Metrics snapshots: counters and gauges as exportable JSON.

Complements the timeline exporters with the aggregate view the paper's
tables give: per-phase words moved, messages, utilization, and
imbalance, plus run-level totals and the communication matrix.  The
schema is versioned (``repro-obs-metrics/v1``) so downstream tooling
(benchmark trend lines, CI assertions) can rely on the field set.
"""

from __future__ import annotations

import json

import numpy as np

from repro.obs.sim import MachineRecorder

SCHEMA = "repro-obs-metrics/v1"


def sim_metrics(rec: MachineRecorder) -> dict:
    """Metrics snapshot of a simulated run observed by ``rec``.

    Per-phase ``words_moved``/``messages`` equal the corresponding
    :class:`~repro.bdm.cost.PhaseRecord` fields, so the snapshot's
    totals match ``machine.report()`` exactly.
    """
    machine = rec.machine
    phases = []
    for record, busy in rec.phase_records:
        peak = float(busy.max())
        mean = float(busy.mean())
        phases.append(
            {
                "name": record.name,
                "elapsed_s": record.elapsed_s,
                "barrier_s": record.barrier_s,
                "comm_s": record.comm_s,
                "comp_s": record.comp_s,
                "words_moved": int(record.words_moved),
                "messages": int(record.messages),
                "utilization": (mean / peak) if peak > 0 else 1.0,
                "imbalance": (peak / mean) if mean > 0 else 1.0,
            }
        )
    total_busy = sum(float(busy.sum()) for _, busy in rec.phase_records)
    total_elapsed = sum(ph["elapsed_s"] for ph in phases)
    return {
        "schema": SCHEMA,
        "engine": "sim",
        "clock": "sim",
        "machine": machine.params.name,
        "p": machine.p,
        "phases": phases,
        "totals": {
            "elapsed_s": sum(ph["elapsed_s"] + ph["barrier_s"] for ph in phases),
            "words_moved": sum(ph["words_moved"] for ph in phases),
            "messages": sum(ph["messages"] for ph in phases),
            "utilization": (
                total_busy / (machine.p * total_elapsed) if total_elapsed > 0 else 1.0
            ),
            "hazards": len(rec.log.instants),
        },
        "comm_matrix": rec.comm_matrix.tolist(),
        "words_served_by": rec.words_served_by.tolist(),
        "words_moved_by": rec.words_moved_by.tolist(),
    }


def wall_metrics(log, *, workers: int | None = None) -> dict:
    """Metrics snapshot of a real-runtime run from its wall-clock log.

    Groups spans by name: occurrence count, total and mean seconds; the
    gauge section records the observed worker lanes (OS pids) and the
    end-to-end wall time.
    """
    groups: dict[str, list[float]] = {}
    for span in log.spans:
        groups.setdefault(span.name, []).append(span.dur_s)
    lanes = [lane for lane in log.lanes() if isinstance(lane, int)]
    return {
        "schema": SCHEMA,
        "engine": "runtime",
        "clock": "wall",
        "machine": log.source,
        "p": workers if workers is not None else len(lanes),
        "phases": [
            {
                "name": name,
                "count": len(durs),
                "total_s": float(np.sum(durs)),
                "mean_s": float(np.mean(durs)),
                "max_s": float(np.max(durs)),
            }
            for name, durs in sorted(groups.items())
        ],
        "totals": {
            "elapsed_s": log.end_s,
            "spans": len(log.spans),
            "worker_lanes": lanes,
        },
    }


def write_metrics(path, snapshot: dict) -> dict:
    """Serialize a metrics snapshot to ``path`` as JSON; returns it."""
    with open(path, "w") as fh:
        json.dump(snapshot, fh, indent=1, sort_keys=False)
        fh.write("\n")
    return snapshot

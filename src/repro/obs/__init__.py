"""Unified observability: tracing, metrics, and profiling for both engines.

The paper is an *experimental study*: its contribution is per-phase
timing breakdowns across four platforms.  This package is the repo's
equivalent instrument -- one event model
(:mod:`~repro.obs.events`) filled by two recorders:

* :class:`~repro.obs.sim.MachineRecorder` observes the simulated
  :class:`~repro.bdm.machine.Machine` (per-processor phase spans,
  barrier waits, the (server, mover) communication matrix, hazard
  provenance) on the simulated clock;
* :class:`~repro.obs.runtime.WallRecorder` observes the real
  :mod:`repro.runtime` multiprocessing backend (worker tasks, merge
  rounds, shared-memory setup) on the wall clock, collected across
  processes via a queue;

and exporters that consume either:

* :func:`~repro.obs.export.chrome_trace` /
  :func:`~repro.obs.export.write_chrome_trace` -- Chrome trace-event
  JSON, loadable in Perfetto or ``chrome://tracing``;
* :func:`~repro.obs.metrics.sim_metrics` /
  :func:`~repro.obs.metrics.wall_metrics` /
  :func:`~repro.obs.metrics.write_metrics` -- counter/gauge snapshots;
* :func:`~repro.obs.sim.comm_heatmap` -- the communication matrix as a
  text heatmap.

See ``docs/OBSERVABILITY.md`` for the full tour and the ``repro
trace`` CLI subcommand for the one-shot entry point.
"""

from repro.obs.events import (
    CAT_BARRIER,
    CAT_FAULT,
    CAT_PHASE,
    CAT_REQUEST,
    CAT_ROUND,
    CAT_SETUP,
    CAT_TASK,
    CLIENT_REQUEST,
    FAULT_DEGRADE,
    FAULT_FAILOVER,
    FAULT_GIVEUP,
    FAULT_MANAGER_CRASH,
    FAULT_RESPAWN,
    FAULT_RETRY,
    FAULT_SHADOW_CRASH,
    FAULT_TIMEOUT,
    FAULT_WORKER_DEATH,
    SVC_BATCH,
    SVC_BATCH_SIZE,
    SVC_CACHE_EVICT,
    SVC_CACHE_HIT,
    SVC_CACHE_MISS,
    SVC_DEGRADED,
    SVC_EXPIRED,
    SVC_QUEUE_SPAN,
    SVC_QUEUE_WAIT,
    SVC_REQUEST,
    SVC_SHED,
    Count,
    EventLog,
    Instant,
    Span,
)
from repro.obs.export import chrome_trace, validate_chrome_trace, write_chrome_trace
from repro.obs.metrics import sim_metrics, wall_metrics, write_metrics
from repro.obs.registry import (
    TIMESERIES_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
    write_timeseries,
)
from repro.obs.runtime import SpanHandle, WallRecorder
from repro.obs.sim import MachineRecorder, comm_heatmap
from repro.obs.trace import TraceContext, set_span_sink, trace_args, traced_span

__all__ = [
    "Span",
    "Instant",
    "Count",
    "EventLog",
    "CAT_PHASE",
    "CAT_BARRIER",
    "CAT_TASK",
    "CAT_ROUND",
    "CAT_SETUP",
    "CAT_FAULT",
    "CAT_REQUEST",
    "CLIENT_REQUEST",
    "SVC_REQUEST",
    "SVC_QUEUE_SPAN",
    "FAULT_TIMEOUT",
    "FAULT_RETRY",
    "FAULT_RESPAWN",
    "FAULT_WORKER_DEATH",
    "FAULT_GIVEUP",
    "FAULT_DEGRADE",
    "FAULT_MANAGER_CRASH",
    "FAULT_SHADOW_CRASH",
    "FAULT_FAILOVER",
    "SVC_BATCH",
    "SVC_BATCH_SIZE",
    "SVC_QUEUE_WAIT",
    "SVC_SHED",
    "SVC_EXPIRED",
    "SVC_CACHE_HIT",
    "SVC_CACHE_MISS",
    "SVC_CACHE_EVICT",
    "SVC_DEGRADED",
    "MachineRecorder",
    "comm_heatmap",
    "WallRecorder",
    "SpanHandle",
    "TraceContext",
    "set_span_sink",
    "trace_args",
    "traced_span",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "TIMESERIES_SCHEMA",
    "parse_prometheus_text",
    "write_timeseries",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "sim_metrics",
    "wall_metrics",
    "write_metrics",
]

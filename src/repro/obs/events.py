"""The structured event model shared by both engines.

Everything the observability layer records is one of three immutable
event kinds, accumulated in an :class:`EventLog`:

* :class:`Span`    -- a named interval on a *lane* (a simulated
  processor, an OS process, or the driver), in seconds on the log's
  clock.
* :class:`Instant` -- a point event (e.g. a detected hazard, with its
  provenance in ``args``).
* :class:`Count`   -- a named counter sample (words moved, messages,
  change-list lengths, ...), attributable to a lane and a time.

The two engines differ only in their clock: the simulated
:class:`~repro.bdm.machine.Machine` produces spans in *simulated*
seconds (``clock="sim"``), the :mod:`repro.runtime` multiprocessing
backend in wall-clock seconds (``clock="wall"``).  Exporters
(:mod:`repro.obs.export`, :mod:`repro.obs.metrics`) consume an
:class:`EventLog` without caring which engine filled it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

#: Span categories used by the built-in recorders.
CAT_PHASE = "phase"      # a processor's busy interval inside a phase
CAT_BARRIER = "barrier"  # idle wait at the phase-closing barrier
CAT_TASK = "task"        # a worker task in the real runtime
CAT_ROUND = "round"      # a driver-side merge round / pool dispatch
CAT_SETUP = "setup"      # shared-memory / pool setup
CAT_FAULT = "fault"      # fault-injection / recovery events
CAT_REQUEST = "request"  # one traced service request's span tree

#: Instant/counter names emitted by the fault-recovery machinery
#: (:mod:`repro.runtime.dispatch` on the wall clock, the simulator's
#: failover model on the simulated clock).  Grouped here so exporters,
#: dashboards, and tests agree on the vocabulary.
FAULT_TIMEOUT = "fault:timeout"          # a task missed its deadline
FAULT_RETRY = "fault:retry"              # a task attempt is being retried
FAULT_RESPAWN = "fault:respawn"          # the worker pool was respawned
FAULT_WORKER_DEATH = "fault:worker-death"  # a worker exited abnormally
FAULT_GIVEUP = "fault:giveup"            # retry budget exhausted
FAULT_DEGRADE = "fault:degrade"          # fell back to the serial engine
FAULT_MANAGER_CRASH = "fault:manager-crash"  # sim: a manager was lost
FAULT_SHADOW_CRASH = "fault:shadow-crash"    # sim: a shadow was lost
FAULT_FAILOVER = "fault:failover"        # sim: the shadow took over

#: Instant/counter/span names emitted by the batch-serving layer
#: (:mod:`repro.service`).  Spans: one ``service:batch`` per coalesced
#: dispatch.  Counts: per-batch sizes, queue-wait seconds, and the
#: cache hit/miss/eviction tallies.  Instants: load-shedding and
#: queued-deadline expiry decisions, with provenance in ``args``.
SVC_BATCH = "service:batch"              # span: one coalesced pool dispatch
CLIENT_REQUEST = "client:request"        # span: one wire request, socket edge
SVC_REQUEST = "service:request"          # span: one submit() inside the service
SVC_QUEUE_SPAN = "service:queue"         # span: admission-to-batch queue wait
SVC_BATCH_SIZE = "service:batch-size"    # count: requests in that dispatch
SVC_QUEUE_WAIT = "service:queue-wait"    # count: seconds a request queued
SVC_SHED = "service:shed"                # instant: request shed at admission
SVC_EXPIRED = "service:expired"          # instant: deadline expired in queue
SVC_CACHE_HIT = "service:cache-hit"      # count: content-addressed cache hits
SVC_CACHE_MISS = "service:cache-miss"    # count: cache misses
SVC_CACHE_EVICT = "service:cache-evict"  # count: LRU evictions
SVC_DEGRADED = "service:degraded-batch"  # instant: batch fell back to serial

#: Names emitted by the shard router (:mod:`repro.service.router`) and
#: its health monitor (:mod:`repro.service.health`).  The router span
#: sits between the client edge and the shard's own request tree: with
#: tracing on, ``router:request`` parents the shard-side
#: ``client:request`` span through the forwarded child context.
ROUTER_REQUEST = "router:request"        # span: one routed request, router edge
ROUTER_REROUTE = "router:reroute"        # instant: forwarded to a ring successor
ROUTER_HEDGE = "router:hedge"            # instant: hedged duplicate sent
ROUTER_SHARD_DOWN = "router:shard-down"  # instant: breaker opened for a shard
ROUTER_SHARD_UP = "router:shard-up"      # instant: breaker closed again
ROUTER_RESPAWN = "router:shard-respawn"  # instant: dead shard process respawned

#: Names emitted by the distributed-array subsystem (:mod:`repro.darray`).
#: Spans cover the three algorithm phases on the driver lane; counts
#: quantify the transport's traffic and working set: border-exchange
#: payload bytes (the paper's O(n) bound per merge level), change-array
#: bytes fanned out to region tiles, spill-file tile reads/writes of the
#: out-of-core transport, and the maximum number of label tiles ever
#: resident at once (the enforced working-set highwater).
DARRAY_LABEL = "darray:label"            # span: initial per-tile labeling pass
DARRAY_MERGE = "darray:merge"            # span: one merge round over borders
DARRAY_FINAL = "darray:final"            # span: hook-based interior update
DARRAY_BORDER_BYTES = "darray:border-bytes"      # count: border payload bytes
DARRAY_CHANGE_BYTES = "darray:change-bytes"      # count: change-array bytes
DARRAY_SPILL_READS = "darray:spill-reads"        # count: tile reads from spill
DARRAY_SPILL_WRITES = "darray:spill-writes"      # count: tile writes to spill
DARRAY_RESIDENT_HIGHWATER = "darray:resident-highwater"  # count: max resident tiles


@dataclass(frozen=True)
class Span:
    """A named interval ``[start_s, start_s + dur_s)`` on lane ``lane``."""

    name: str
    lane: int | str
    start_s: float
    dur_s: float
    cat: str = CAT_PHASE
    args: Mapping[str, Any] = field(default_factory=dict)

    @property
    def end_s(self) -> float:
        return self.start_s + self.dur_s


@dataclass(frozen=True)
class Instant:
    """A point event (rendered as an arrow/flag in trace viewers)."""

    name: str
    lane: int | str
    t_s: float
    args: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Count:
    """One counter sample at time ``t_s``."""

    name: str
    value: float
    lane: int | str = "total"
    t_s: float = 0.0


class EventLog:
    """Append-only store of spans, instants, and counter samples.

    Parameters
    ----------
    clock:
        ``"sim"`` for simulated seconds, ``"wall"`` for wall-clock
        seconds.  Purely descriptive -- exporters embed it in their
        output so readers know what the time axis means.
    source:
        Human-readable producer label (machine name, backend name).
    """

    def __init__(self, *, clock: str = "sim", source: str = ""):
        self.clock = clock
        self.source = source
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        self.counts: list[Count] = []

    # -- recording ---------------------------------------------------------

    def add_span(
        self,
        name: str,
        lane: int | str,
        start_s: float,
        dur_s: float,
        *,
        cat: str = CAT_PHASE,
        **args: Any,
    ) -> Span:
        span = Span(name, lane, float(start_s), float(dur_s), cat, args)
        self.spans.append(span)
        return span

    def add_instant(self, name: str, lane: int | str, t_s: float, **args: Any) -> Instant:
        inst = Instant(name, lane, float(t_s), args)
        self.instants.append(inst)
        return inst

    def add_count(
        self, name: str, value: float, *, lane: int | str = "total", t_s: float = 0.0
    ) -> Count:
        count = Count(name, float(value), lane, float(t_s))
        self.counts.append(count)
        return count

    # -- views -------------------------------------------------------------

    def lanes(self) -> list[int | str]:
        """All lanes that carry at least one span, ints first, in order."""
        seen: dict[int | str, None] = {}
        for span in self.spans:
            seen.setdefault(span.lane, None)
        keys = list(seen)
        return sorted(keys, key=lambda k: (isinstance(k, str), str(k), k if isinstance(k, int) else 0))

    def spans_on(self, lane: int | str) -> list[Span]:
        return [s for s in self.spans if s.lane == lane]

    def clear(self) -> None:
        self.spans.clear()
        self.instants.clear()
        self.counts.clear()

    @property
    def end_s(self) -> float:
        """Latest span/instant end time (0 when empty)."""
        ends = [s.end_s for s in self.spans] + [i.t_s for i in self.instants]
        return max(ends, default=0.0)

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants) + len(self.counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EventLog(clock={self.clock!r}, spans={len(self.spans)}, "
            f"instants={len(self.instants)}, counts={len(self.counts)})"
        )

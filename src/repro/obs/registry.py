"""A metrics registry: counters, gauges, and log-bucketed histograms.

The service tier needs *distributions*, not lifetime means: a p99 that
doubles under load is invisible in ``total_wait_s / admitted``.  This
module is the minimal metrics plane for that -- three instrument kinds
registered by name (plus label sets), a Prometheus text exposition for
scrapers, and a JSON snapshot for time-series files:

* :class:`Counter` -- monotone float, ``inc()``;
* :class:`Gauge`   -- settable float, ``set()``/``inc()``/``dec()``;
* :class:`Histogram` -- log-bucketed observations with quantile
  extraction.  Buckets grow geometrically (factor ``2**(1/8)``, about
  9% per bucket) from 1 microsecond to beyond an hour, so any latency
  the service can produce lands in a bucket whose *relative* width is
  constant -- quantiles are accurate to one bucket's relative error at
  every magnitude, which is what latency monitoring needs (an exact
  p50 of 230us and a reported 242us are the same answer; a p99 of 8ms
  reported as 80ms is not).

Histograms with the same bucket bounds **merge** by adding counts --
associatively and commutatively -- which is the property the sharded
service tier (ROADMAP item 2) needs to aggregate per-shard latency
into a fleet view; ``tests/test_obs_registry.py`` proves it with
Hypothesis.

Thread-safety: every mutation takes the owning registry's lock.  The
cost (an uncontended lock acquire, ~100ns) is noise next to the pool
dispatch the instrumented paths wrap, and it makes the registry safe
to share between the event loop, the executor thread, and scrapers.
"""

from __future__ import annotations

import json
import math
import threading
import time
from typing import Iterable, Mapping

from repro.utils.errors import ValidationError

#: Schema tag of the JSON time-series snapshot.
TIMESERIES_SCHEMA = "repro-obs-timeseries/v1"

#: Geometric bucket growth: 2**(1/8) per bucket (~9.05% relative width).
BUCKET_GROWTH = 2.0 ** 0.125

#: First finite upper bound, seconds (1 microsecond).
BUCKET_BASE = 1e-6

#: Finite bucket count: 1us growing 9%/bucket covers past 5000s.
BUCKET_COUNT = 264

#: The shared finite upper bounds (one +Inf bucket is implicit).
BUCKET_BOUNDS: tuple[float, ...] = tuple(
    BUCKET_BASE * BUCKET_GROWTH**i for i in range(BUCKET_COUNT)
)

_LN_GROWTH = math.log(BUCKET_GROWTH)

_LABEL_OK = set("abcdefghijklmnopqrstuvwxyz0123456789_")


def _check_name(name: str) -> str:
    if not name or not set(name.lower()) <= (_LABEL_OK | {":"}):
        raise ValidationError(f"invalid metric name {name!r}")
    return name


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValidationError("counters only go up")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down (depths, occupancy, bytes)."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """Log-bucketed observations with quantile extraction and merge.

    ``buckets[i]`` counts observations ``<= BUCKET_BOUNDS[i]`` (and
    above the previous bound); ``buckets[-1]`` is the +Inf overflow.
    Negative observations are clamped to zero (they can only arise
    from clock wobble) and land in the first bucket.
    """

    __slots__ = ("_lock", "buckets", "count", "sum")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.buckets = [0] * (BUCKET_COUNT + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = max(float(value), 0.0)
        if value <= BUCKET_BASE:
            idx = 0
        else:
            # ceil of the geometric index; guard the top into +Inf.
            idx = math.ceil(math.log(value / BUCKET_BASE) / _LN_GROWTH)
            idx = min(max(idx, 0), BUCKET_COUNT)
        with self._lock:
            self.buckets[idx] += 1
            self.count += 1
            self.sum += value

    def quantile(self, q: float) -> float:
        """The q-quantile (0..1) interpolated within its bucket.

        Empty histograms return 0.0.  Observations in the overflow
        bucket report the last finite bound (a floor, clearly wrong
        only when >1h latencies are common -- at which point no
        quantile number helps).
        """
        if not 0.0 <= q <= 1.0:
            raise ValidationError("quantile must be in [0, 1]")
        with self._lock:
            total = self.count
            if total == 0:
                return 0.0
            rank = q * total
            cum = 0
            for idx, n in enumerate(self.buckets):
                if n == 0:
                    continue
                if cum + n >= rank:
                    if idx >= BUCKET_COUNT:
                        return BUCKET_BOUNDS[-1]
                    hi = BUCKET_BOUNDS[idx]
                    lo = BUCKET_BOUNDS[idx - 1] if idx > 0 else 0.0
                    frac = (rank - cum) / n
                    return lo + (hi - lo) * frac
                cum += n
            return BUCKET_BOUNDS[-1]

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s observations into this histogram."""
        with self._lock:
            for i, n in enumerate(other.buckets):
                self.buckets[i] += n
            self.count += other.count
            self.sum += other.sum


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """All instruments sharing one metric name (one per label set)."""

    __slots__ = ("name", "kind", "help", "unit", "label_names", "children")

    def __init__(self, name: str, kind: str, help: str, unit: str | None,
                 label_names: tuple[str, ...]):
        self.name = name
        self.kind = kind
        self.help = help
        self.unit = unit
        self.label_names = label_names
        self.children: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}


class MetricsRegistry:
    """Named metric families with label support and two exposition forms.

    Instruments are created on first touch::

        reg = MetricsRegistry()
        reg.counter("repro_requests_total", "Requests received",
                    labels={"op": "histogram"}).inc()
        reg.histogram("repro_request_latency_seconds",
                      "End-to-end latency", unit="seconds",
                      labels={"op": "histogram"}).observe(0.0023)

    A family's label *names* are fixed by its first registration;
    registering the same name with a different kind or label-name set
    raises, because a scraper cannot make sense of such a family.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    # -- instrument access -------------------------------------------------

    def counter(self, name: str, help: str = "", *, unit: str | None = None,
                labels: Mapping[str, str] | None = None) -> Counter:
        return self._child(name, "counter", help, unit, labels)

    def gauge(self, name: str, help: str = "", *, unit: str | None = None,
              labels: Mapping[str, str] | None = None) -> Gauge:
        return self._child(name, "gauge", help, unit, labels)

    def histogram(self, name: str, help: str = "", *, unit: str | None = None,
                  labels: Mapping[str, str] | None = None) -> Histogram:
        return self._child(name, "histogram", help, unit, labels)

    def _child(self, name, kind, help, unit, labels):
        _check_name(name)
        labels = dict(labels or {})
        label_names = tuple(sorted(labels))
        label_values = tuple(str(labels[k]) for k in label_names)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = _Family(
                    name, kind, help, unit, label_names
                )
            elif family.kind != kind or family.label_names != label_names:
                raise ValidationError(
                    f"metric {name!r} already registered as {family.kind} "
                    f"with labels {list(family.label_names)}"
                )
            child = family.children.get(label_values)
            if child is None:
                child = family.children[label_values] = _KINDS[kind](self._lock)
            return child

    def families(self) -> Iterable[_Family]:
        with self._lock:
            return [self._families[k] for k in sorted(self._families)]

    def family(self, name: str) -> _Family | None:
        """The family registered under ``name``, or None."""
        with self._lock:
            return self._families.get(name)

    # -- exposition --------------------------------------------------------

    def prometheus_text(self) -> str:
        """The registry in Prometheus text exposition format (0.0.4)."""
        lines: list[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for values, child in sorted(family.children.items()):
                labelled = dict(zip(family.label_names, values))
                if family.kind == "histogram":
                    lines.extend(_histogram_lines(family.name, labelled, child))
                else:
                    lines.append(
                        f"{family.name}{_labels_text(labelled)} {_num(child.value)}"
                    )
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> dict:
        """A JSON-ready sample of every instrument (for time series).

        Histograms are summarized (count, sum, p50/p95/p99) rather than
        dumped bucket-by-bucket: the time-series file is for trend
        lines, the Prometheus exposition is for full distributions.
        """
        metrics: list[dict] = []
        for family in self.families():
            for values, child in sorted(family.children.items()):
                entry: dict = {
                    "name": family.name,
                    "kind": family.kind,
                    "labels": dict(zip(family.label_names, values)),
                }
                if family.unit:
                    entry["unit"] = family.unit
                if family.kind == "histogram":
                    entry.update(
                        count=child.count,
                        sum=child.sum,
                        p50=child.quantile(0.50),
                        p95=child.quantile(0.95),
                        p99=child.quantile(0.99),
                    )
                else:
                    entry["value"] = child.value
                metrics.append(entry)
        return {
            "schema": TIMESERIES_SCHEMA,
            "t_unix_s": time.time(),
            "metrics": metrics,
        }


def _num(value: float) -> str:
    """Prometheus-friendly number: integers bare, floats repr'd."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r"\"")


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _labels_text(labels: Mapping[str, str], extra: Mapping[str, str] | None = None) -> str:
    merged = {**labels, **(extra or {})}
    if not merged:
        return ""
    inner = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in merged.items())
    return "{" + inner + "}"


def _histogram_lines(name: str, labels: Mapping[str, str], hist: Histogram) -> list[str]:
    lines = []
    cum = 0
    for bound, n in zip(BUCKET_BOUNDS, hist.buckets):
        cum += n
        if n == 0:
            continue  # emit occupied buckets only; cumulative counts survive
        lines.append(
            f"{name}_bucket{_labels_text(labels, {'le': repr(bound)})} {cum}"
        )
    cum += hist.buckets[-1]
    lines.append(f"{name}_bucket{_labels_text(labels, {'le': '+Inf'})} {cum}")
    lines.append(f"{name}_sum{_labels_text(labels)} {_num(hist.sum)}")
    lines.append(f"{name}_count{_labels_text(labels)} {hist.count}")
    return lines


def parse_prometheus_text(text: str) -> dict[str, dict]:
    """Parse an exposition back into ``{name: {"type":..., "samples":...}}``.

    Deliberately minimal -- enough for CI to assert a scrape is
    well-formed and for tests to read values back.  Unparsable lines
    raise :class:`~repro.utils.errors.ValidationError`.
    """
    families: dict[str, dict] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            try:
                _, _, name, kind = line.split(None, 3)
            except ValueError:
                raise ValidationError(f"bad TYPE line: {raw!r}") from None
            families.setdefault(name, {"type": kind, "samples": []})
            continue
        if line.startswith("#"):
            continue
        if "{" in line:
            head, _, rest = line.partition("{")
            labels_text, _, tail = rest.partition("}")
            value_text = tail.strip()
        else:
            head, _, value_text = line.partition(" ")
            labels_text = ""
        sample_name = head.strip()
        try:
            value = float(value_text)
        except ValueError:
            raise ValidationError(f"bad sample line: {raw!r}") from None
        labels = {}
        if labels_text:
            for part in labels_text.split(","):
                key, _, val = part.partition("=")
                if not val.startswith('"') or not val.endswith('"'):
                    raise ValidationError(f"bad label in line: {raw!r}")
                labels[key.strip()] = val[1:-1]
        base = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            if base.endswith(suffix) and base[: -len(suffix)] in families:
                base = base[: -len(suffix)]
                break
        family = families.setdefault(base, {"type": "untyped", "samples": []})
        family["samples"].append(
            {"name": sample_name, "labels": labels, "value": value}
        )
    return families


def write_timeseries(path, samples: list[dict]) -> dict:
    """Write accumulated :meth:`MetricsRegistry.snapshot` samples as JSON."""
    payload = {"schema": TIMESERIES_SCHEMA, "samples": samples}
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")
    return payload

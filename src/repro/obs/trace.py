"""Distributed request tracing: contexts, propagation, and span sinks.

A *trace* is one request's journey through the service tier: the client
mints a :class:`TraceContext` (``trace_id``/``span_id``/``parent_id``),
ships it in the ndjson wire envelope, and every layer that does work on
the request's behalf records a span carrying the context's ids -- so a
single request yields one connected span tree even though its spans are
produced by the socket handler, the batcher coroutine, a pool worker in
another process, and the kernel underneath it.

Propagation has two legs:

* **In-process** (driver side) the current context lives in a
  :mod:`contextvars` variable: :func:`activate` installs a context for
  a scope, :func:`current` reads it, and :func:`traced_span` records a
  child span through the installed *span sink* (see
  :func:`set_span_sink`).  asyncio tasks inherit contextvars, so the
  context follows a request through ``await`` boundaries for free.
* **Cross-process** the context rides the task payload (the wire form
  of :meth:`TraceContext.to_wire`); the worker re-activates it, and
  worker spans flow back through the :class:`~repro.obs.runtime.
  WallRecorder` queue with the trace ids in their ``args`` -- the ids,
  not the contextvar, are what cross the process boundary.

Everything here is a no-op when no context is active *and* when no sink
is installed, so untraced hot paths pay one ``is None`` check.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import random
import time
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.obs.events import CAT_TASK
from repro.utils.errors import ValidationError

#: Hex-digit lengths of the wire ids (128-bit trace, 64-bit span).
TRACE_ID_HEX = 32
SPAN_ID_HEX = 16

_HEX = set("0123456789abcdef")

#: Id source: a dedicated urandom-seeded PRNG.  Trace ids need to be
#: collision-resistant, not unpredictable, and ``getrandbits`` is a
#: single C call -- an order of magnitude cheaper than ``secrets`` on
#: the per-request mint path (and what OpenTelemetry SDKs do too).
#: Forked pool workers would inherit the parent's PRNG state and mint
#: colliding span ids, so the child reseeds from the OS.
_IDS = random.Random()
if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_IDS.seed)


def _check_id(field: str, value: str, length: int) -> str:
    if (
        not isinstance(value, str)
        or len(value) != length
        or not set(value) <= _HEX
    ):
        raise ValidationError(
            f"trace context {field!r} must be {length} lowercase hex digits"
        )
    return value


@dataclass(frozen=True)
class TraceContext:
    """One node of a request's span tree, in OpenTelemetry-style ids.

    ``trace_id`` names the whole tree, ``span_id`` this node, and
    ``parent_id`` the node that caused it (``None`` at the root).
    Contexts are immutable; descending a level goes through
    :meth:`child`, which keeps the trace id and re-parents.
    """

    trace_id: str
    span_id: str
    parent_id: str | None = None

    @classmethod
    def mint(cls) -> "TraceContext":
        """A fresh root context with random ids."""
        return cls(
            trace_id=f"{_IDS.getrandbits(128):032x}",
            span_id=f"{_IDS.getrandbits(64):016x}",
        )

    def child(self) -> "TraceContext":
        """A child context: same trace, new span, parented here."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=f"{_IDS.getrandbits(64):016x}",
            parent_id=self.span_id,
        )

    def to_wire(self) -> dict:
        """The JSON-encodable wire form carried in the request envelope."""
        out = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        return out

    @classmethod
    def from_wire(cls, obj) -> "TraceContext":
        """Parse and validate a wire-form context; raises on junk."""
        if not isinstance(obj, dict):
            raise ValidationError("'trace' must be an object")
        unknown = set(obj) - {"trace_id", "span_id", "parent_id"}
        if unknown:
            raise ValidationError(
                f"unknown trace context field(s): {sorted(unknown)}"
            )
        trace_id = _check_id("trace_id", obj.get("trace_id"), TRACE_ID_HEX)
        span_id = _check_id("span_id", obj.get("span_id"), SPAN_ID_HEX)
        parent = obj.get("parent_id")
        if parent is not None:
            parent = _check_id("parent_id", parent, SPAN_ID_HEX)
        return cls(trace_id=trace_id, span_id=span_id, parent_id=parent)

    def span_args(self) -> dict:
        """The ids as span ``args`` (what exporters and viewers see)."""
        out = {"trace": self.trace_id, "span": self.span_id}
        if self.parent_id is not None:
            out["parent"] = self.parent_id
        return out

    @property
    def lane(self) -> str:
        """The per-request timeline lane this trace's spans render on."""
        return f"req:{self.trace_id[:8]}"


# -- in-process propagation ---------------------------------------------------

_CURRENT: contextvars.ContextVar[TraceContext | None] = contextvars.ContextVar(
    "repro_trace_context", default=None
)


def current() -> TraceContext | None:
    """The active trace context of this task/thread, if any."""
    return _CURRENT.get()


@contextlib.contextmanager
def activate(ctx: TraceContext | None) -> Iterator[TraceContext | None]:
    """Install ``ctx`` as the current context for the scope."""
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)


def trace_args() -> dict:
    """The current context's span args, or ``{}`` when untraced."""
    ctx = _CURRENT.get()
    return ctx.span_args() if ctx is not None else {}


# -- span sink ----------------------------------------------------------------

#: ``sink(name, t0_s, t1_s, cat, args)`` -- perf_counter endpoints.
SpanSink = Callable[[str, float, float, str, dict], None]

_SPAN_SINK: SpanSink | None = None


def set_span_sink(sink: SpanSink | None) -> SpanSink | None:
    """Install the process-wide span sink; returns the previous one.

    The driver installs a recorder-backed sink (spans land in the
    :class:`~repro.obs.runtime.WallRecorder` log); pool workers install
    a queue-backed sink in their initializer.  ``None`` uninstalls.
    """
    global _SPAN_SINK
    previous, _SPAN_SINK = _SPAN_SINK, sink
    return previous


@contextlib.contextmanager
def traced_span(name: str, *, cat: str = CAT_TASK, **args) -> Iterator[TraceContext | None]:
    """Record one child span of the current context through the sink.

    No active context or no installed sink means no recording at all --
    the wrapped code runs bare.  Inside the scope the child context is
    current, so nested :func:`traced_span` calls chain parentage.
    """
    ctx = _CURRENT.get()
    if ctx is None or _SPAN_SINK is None:
        yield None
        return
    child = ctx.child()
    token = _CURRENT.set(child)
    t0 = time.perf_counter()
    try:
        yield child
    finally:
        t1 = time.perf_counter()
        _CURRENT.reset(token)
        sink = _SPAN_SINK
        if sink is not None:
            sink(name, t0, t1, cat, {**child.span_args(), **args})

"""Event recording for the simulated BDM machine.

:class:`MachineRecorder` subscribes to a
:class:`~repro.bdm.machine.Machine`'s observer stream and turns it into
an :class:`~repro.obs.events.EventLog` on the *simulated* clock plus a
per-(server, mover) communication matrix:

* every phase contributes one busy :class:`~repro.obs.events.Span` per
  processor (category ``phase``) and, for processors that finish early,
  a ``barrier`` span covering the idle wait until the phase's critical
  path plus the barrier itself;
* every remote access contributes to ``comm_matrix[server][mover]``
  (the words served by ``server``'s port and charged to ``mover`` --
  row sums therefore equal each processor's ``words_served``, column
  sums its ``words_moved``);
* detected hazards land as :class:`~repro.obs.events.Instant` events
  carrying the full provenance of the
  :class:`repro.checker.shadow.Hazard`.

Usage::

    machine = Machine(p, CM5)
    rec = MachineRecorder(machine)      # attach before running
    ... run the algorithm ...
    write_chrome_trace("t.json", rec.log)
    print(comm_heatmap(rec.comm_matrix))
"""

from __future__ import annotations

import numpy as np

from repro.bdm.machine import Machine, MachineObserver
from repro.obs.events import CAT_BARRIER, CAT_PHASE, EventLog


class MachineRecorder(MachineObserver):
    """Collects a machine's event stream into an :class:`EventLog`.

    Unlike the legacy one-:class:`~repro.bdm.trace.Tracer`-per-machine
    restriction, any number of recorders may observe one machine (they
    are independent consumers of the same stream).  Attach before the
    phases of interest; :meth:`detach` stops recording.
    """

    def __init__(self, machine: Machine):
        self.machine = machine
        self.log = EventLog(clock="sim", source=machine.params.name)
        self.comm_matrix = np.zeros((machine.p, machine.p), dtype=np.int64)
        self.phase_records: list = []  # (PhaseRecord, busy_s ndarray) pairs
        machine.attach_observer(self)

    def detach(self) -> None:
        """Stop observing the machine (recorded events are kept)."""
        self.machine.detach_observer(self)

    # -- observer hooks ----------------------------------------------------

    def on_phase(self, record, deltas, start_s: float) -> None:
        busy = np.array([d.total_s for d in deltas])
        self.phase_records.append((record, busy))
        end_s = start_s + record.elapsed_s + record.barrier_s
        for pid, delta in enumerate(deltas):
            busy_s = delta.total_s
            if busy_s > 0:
                self.log.add_span(
                    record.name,
                    pid,
                    start_s,
                    busy_s,
                    cat=CAT_PHASE,
                    words_moved=delta.words_moved,
                    words_served=delta.words_served,
                    messages=delta.messages,
                    comp_s=delta.comp_s,
                    comm_s=delta.comm_s,
                )
            wait_s = end_s - (start_s + busy_s)
            if wait_s > 0:
                self.log.add_span(
                    f"{record.name}:barrier",
                    pid,
                    start_s + busy_s,
                    wait_s,
                    cat=CAT_BARRIER,
                )
        self.log.add_count("words_moved", record.words_moved, t_s=end_s)
        self.log.add_count("messages", record.messages, t_s=end_s)

    def on_traffic(self, server: int, mover: int, words: int) -> None:
        self.comm_matrix[server, mover] += words

    def on_instant(self, name: str, lane, t_s: float, args: dict) -> None:
        self.log.add_instant(name, lane if lane is not None else "machine", t_s, **args)
        if name.startswith("fault:"):
            self.log.add_count(name, 1, t_s=t_s)

    def fault_events(self) -> list:
        """All recorded fault-category instants (``fault:*`` names)."""
        return [i for i in self.log.instants if i.name.startswith("fault:")]

    def on_hazard(self, hazard) -> None:
        lane = getattr(hazard, "accessor", None)
        self.log.add_instant(
            f"hazard:{getattr(hazard, 'kind', 'unknown')}",
            lane if lane is not None else "hazard",
            self.machine._sim_time_s,
            **_hazard_args(hazard),
        )

    def on_reset(self) -> None:
        self.log.clear()
        self.comm_matrix[:] = 0
        self.phase_records.clear()

    # -- derived views -----------------------------------------------------

    @property
    def words_served_by(self) -> np.ndarray:
        """Row sums: words each processor's port served."""
        return self.comm_matrix.sum(axis=1)

    @property
    def words_moved_by(self) -> np.ndarray:
        """Column sums: words each processor was charged for moving."""
        return self.comm_matrix.sum(axis=0)


def _hazard_args(hazard) -> dict:
    if hazard is None:
        return {}
    args = {}
    for field in ("kind", "array", "owner", "accessor", "phase"):
        value = getattr(hazard, field, None)
        if value is not None:
            args[field] = value
    others = getattr(hazard, "others", None)
    if others is not None:
        args["others"] = list(others)
    ranges = getattr(hazard, "ranges", None)
    if ranges is not None:
        args["ranges"] = [list(r) for r in ranges]
    if not args:  # fall back to the repr so nothing is silently dropped
        args["detail"] = repr(hazard)
    return args


def comm_heatmap(matrix: np.ndarray, *, chars: str = " .:-=+*#%@") -> str:
    """Render a (server x mover) word-count matrix as a text heatmap.

    Each cell is one character from ``chars`` scaled by the cell's share
    of the largest entry; exact counts are appended per row (total words
    served), per column totals in the footer (words moved).
    """
    matrix = np.asarray(matrix)
    p = matrix.shape[0]
    peak = matrix.max(initial=0)
    lines = ["comm matrix: rows = serving processor, cols = moving processor"]
    header = "      " + "".join(f"{j % 10}" for j in range(p))
    lines.append(header)
    for i in range(p):
        cells = []
        for j in range(p):
            if peak == 0 or matrix[i, j] == 0:
                cells.append(chars[0] if matrix[i, j] == 0 else chars[1])
            else:
                idx = 1 + int((len(chars) - 2) * matrix[i, j] / peak)
                cells.append(chars[min(idx, len(chars) - 1)])
        lines.append(f"P{i:<4} " + "".join(cells) + f"  {int(matrix[i].sum())}")
    lines.append("moved " + " ".join(str(int(v)) for v in matrix.sum(axis=0)))
    return "\n".join(lines)

"""Exporters: Chrome trace-event JSON for Perfetto / ``chrome://tracing``.

The Chrome trace-event format is the de-facto interchange for timeline
viewers: a JSON object with a ``traceEvents`` list of dicts, each with
a phase type ``ph`` (``"X"`` complete span, ``"i"`` instant, ``"C"``
counter, ``"M"`` metadata), a timestamp ``ts`` in microseconds, and a
``pid``/``tid`` pair naming the track.  :func:`chrome_trace` maps an
:class:`~repro.obs.events.EventLog` onto it -- simulated seconds are
converted to microseconds, so a simulated CM-5 run opens in Perfetto
with the same time axis the paper's figures use.

:func:`validate_chrome_trace` is the schema check used by tests and the
CI trace-smoke step: strict JSON-compatible structure, required keys,
and non-overlapping spans per track.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.events import EventLog
from repro.utils.errors import ValidationError

#: Tolerance (µs) when checking span ordering; floating-point second ->
#: microsecond conversion can wobble at the last ulp.
_EPS_US = 1e-6


def chrome_trace(log: EventLog, *, pid: int = 0) -> dict:
    """Convert an :class:`EventLog` to a Chrome trace-event JSON object.

    Every log lane becomes one ``tid`` (thread track) under a single
    ``pid`` named after the log's source, with ``thread_name`` metadata
    so viewers show ``P0, P1, ...`` / worker OS pids / ``driver``.
    """
    lanes = log.lanes()
    # Stable small tids: ints (processors / OS pids) first, then strings.
    tid_of = {lane: tid for tid, lane in enumerate(lanes)}
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "args": {"name": f"{log.source or 'repro'} [{log.clock} clock]"},
        }
    ]
    for lane, tid in tid_of.items():
        label = f"P{lane}" if isinstance(lane, int) and log.clock == "sim" else str(lane)
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": label},
            }
        )
    for span in log.spans:
        events.append(
            {
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": span.start_s * 1e6,
                "dur": span.dur_s * 1e6,
                "pid": pid,
                "tid": tid_of[span.lane],
                "args": dict(span.args),
            }
        )
    for inst in log.instants:
        events.append(
            {
                "name": inst.name,
                "ph": "i",
                "s": "p",  # process-scoped instant
                "ts": inst.t_s * 1e6,
                "pid": pid,
                "tid": tid_of.get(inst.lane, 0),
                "args": dict(inst.args),
            }
        )
    for count in log.counts:
        events.append(
            {
                "name": count.name,
                "ph": "C",
                "ts": count.t_s * 1e6,
                "pid": pid,
                "args": {str(count.lane): count.value},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": log.clock, "source": log.source},
    }


def write_chrome_trace(path, log: EventLog, *, pid: int = 0) -> dict:
    """Serialize :func:`chrome_trace` to ``path``; returns the object."""
    obj = chrome_trace(log, pid=pid)
    validate_chrome_trace(obj)
    with open(path, "w") as fh:
        json.dump(obj, fh, indent=1)
        fh.write("\n")
    return obj


def validate_chrome_trace(obj) -> None:
    """Check ``obj`` is a well-formed Chrome trace-event object.

    Raises :class:`~repro.utils.errors.ValidationError` unless:

    * ``obj`` round-trips through strict JSON,
    * ``traceEvents`` is a list of dicts, each with ``ph`` and ``pid``,
    * non-metadata events carry a numeric ``ts`` and complete (``X``)
      events a numeric ``dur``, a ``tid`` and a ``name``,
    * on every ``(pid, tid)`` track the complete spans either follow
      each other or **nest** (a request span may contain its queue and
      batch child spans); *partially* overlapping spans -- one starts
      inside another but ends outside it -- have no tree structure and
      are rejected.
    """
    try:
        obj = json.loads(json.dumps(obj, allow_nan=False))
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"trace is not strict JSON: {exc}") from exc
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        raise ValidationError("trace must be an object with a 'traceEvents' list")
    events = obj["traceEvents"]
    if not isinstance(events, list):
        raise ValidationError("'traceEvents' must be a list")
    tracks: dict[tuple, list[tuple[float, float]]] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValidationError(f"traceEvents[{i}] is not an object")
        for key in ("ph", "pid"):
            if key not in ev:
                raise ValidationError(f"traceEvents[{i}] lacks required key {key!r}")
        ph = ev["ph"]
        if ph == "M":
            continue
        if not isinstance(ev.get("ts"), (int, float)):
            raise ValidationError(f"traceEvents[{i}] lacks a numeric 'ts'")
        if ph == "X":
            if not isinstance(ev.get("dur"), (int, float)):
                raise ValidationError(f"traceEvents[{i}] lacks a numeric 'dur'")
            if "tid" not in ev or "name" not in ev:
                raise ValidationError(f"traceEvents[{i}] lacks 'tid'/'name'")
            tracks.setdefault((ev["pid"], ev["tid"]), []).append(
                (float(ev["ts"]), float(ev["dur"]))
            )
    for (pid, tid), spans in tracks.items():
        # Sort by start, longest first at equal starts, and sweep with a
        # stack of open intervals: each span must start after the top of
        # the stack ends (sibling) or end within it (nested child).
        spans.sort(key=lambda s: (s[0], -s[1]))
        stack: list[tuple[float, float]] = []
        for t0, d0 in spans:
            while stack and t0 >= stack[-1][0] + stack[-1][1] - _EPS_US:
                stack.pop()
            if stack and t0 + d0 > stack[-1][0] + stack[-1][1] + _EPS_US:
                p0, pd = stack[-1]
                raise ValidationError(
                    f"overlapping spans on track pid={pid} tid={tid}: "
                    f"[{t0}, {t0 + d0}) partially overlaps [{p0}, {p0 + pd})"
                )
            stack.append((t0, d0))

"""repro: parallel image histogramming and connected components.

A production-quality Python reproduction of

    David A. Bader and Joseph JaJa, "Parallel Algorithms for Image
    Histogramming and Connected Components with an Experimental
    Study", PPoPP 1995 / UMD technical report, December 1994.

The package provides

* the paper's algorithms executed on a simulated Block Distributed
  Memory machine with full cost accounting
  (:func:`repro.core.parallel_histogram`,
  :func:`repro.core.parallel_components`),
* the BDM substrate itself (:mod:`repro.bdm`) with the transpose and
  broadcast primitives of Section 2,
* machine models for the five platforms of the experimental study
  (:mod:`repro.machines`),
* sequential baselines and test-image generators,
* a real multiprocessing runtime (:mod:`repro.runtime`) for wall-clock
  parallel runs on multi-core hosts, and
* a kernel registry (:mod:`repro.kernels`) dispatching the hot local
  steps to a per-pixel ``python`` reference or a bit-identical
  vectorized ``numpy`` backend (see docs/KERNELS.md).

Quickstart::

    import repro
    from repro.images import binary_test_image
    from repro.machines import CM5

    img = binary_test_image(9, 512)           # the dual-spiral pattern
    result = repro.parallel_components(img, p=32, machine_params=CM5)
    print(result.n_components, result.elapsed_s)
"""

from repro import kernels
from repro.faults import FaultPlan, FaultSpec
from repro.core.connected_components import parallel_components, ComponentsResult
from repro.core.equalization import parallel_equalize, EqualizationResult
from repro.core.histogram import parallel_histogram, HistogramResult
from repro.core.tiles import ProcessorGrid
from repro.baselines.sequential import (
    sequential_components,
    sequential_histogram,
)
from repro.machines.params import MACHINES, get_machine

__version__ = "1.4.0"

__all__ = [
    "kernels",
    "FaultPlan",
    "FaultSpec",
    "parallel_components",
    "ComponentsResult",
    "parallel_histogram",
    "HistogramResult",
    "parallel_equalize",
    "EqualizationResult",
    "ProcessorGrid",
    "sequential_components",
    "sequential_histogram",
    "MACHINES",
    "get_machine",
    "__version__",
]

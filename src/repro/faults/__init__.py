"""Deterministic fault injection and recovery (`repro.faults`).

The paper's merge phase already designates a **shadow manager**
directly across each border (Section 5) -- a redundancy hook this
package exploits: a declarative, seeded :class:`FaultPlan` injects
worker crashes, hangs, transient exceptions, and corrupted border
payloads at named sites, and the two engines recover:

* the **multiprocessing runtime** gains per-task deadlines, bounded
  retry with exponential backoff, pool respawn on worker death, and
  graceful degradation to the serial engine
  (:mod:`repro.runtime.dispatch`);
* the **BDM simulator** gains a processor-fault model at merge-round
  boundaries where the shadow manager fails over, so any single
  manager loss per round still yields bit-identical labels
  (:func:`repro.core.connected_components.parallel_components` with
  ``fault_plan=``).

Under every single-fault plan a run either returns results
bit-identical to the unfaulted serial engine or raises a typed
:class:`~repro.utils.errors.FaultError` within the deadline -- never a
hang, never a leaked ``/dev/shm`` segment
(:mod:`repro.faults.leakcheck`).  See ``docs/FAULTS.md``.
"""

from repro.faults.inject import (
    corrupt_labels,
    corrupt_pixels,
    fire,
    fire_async,
    install_plan,
    validate_border_labels,
)
from repro.faults.leakcheck import assert_no_shm_leak, leaked_since, shm_segments
from repro.faults.plan import (
    KINDS,
    SCHEMA,
    SITES,
    TARGETS,
    FaultPlan,
    FaultSpec,
    single_fault_plans,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "SITES",
    "KINDS",
    "TARGETS",
    "SCHEMA",
    "single_fault_plans",
    "install_plan",
    "fire",
    "fire_async",
    "corrupt_labels",
    "corrupt_pixels",
    "validate_border_labels",
    "shm_segments",
    "leaked_since",
    "assert_no_shm_leak",
]

"""Shared-memory leak detection for tests and the chaos CLI.

POSIX shared memory created by :class:`multiprocessing.shared_memory`
lives in ``/dev/shm`` under names prefixed ``psm_``; a segment whose
owner never calls ``unlink`` persists after every process exits.  The
helpers here snapshot that namespace so tests (and the ``repro chaos``
subcommand) can assert every error path tears its segments down.
"""

from __future__ import annotations

import contextlib
import os
import time
from typing import Iterator

#: Where POSIX shared memory is mounted on Linux.
SHM_DIR = "/dev/shm"

#: Name prefix of segments created by multiprocessing.shared_memory.
SHM_PREFIX = "psm_"


def shm_segments() -> set[str]:
    """Names of live ``psm_``-prefixed shared-memory segments.

    Empty on platforms without a scannable ``/dev/shm`` (the leak
    check degrades to a no-op there rather than failing).
    """
    try:
        names = os.listdir(SHM_DIR)
    except OSError:
        return set()
    return {n for n in names if n.startswith(SHM_PREFIX)}


def leaked_since(before: set[str], *, grace_s: float = 1.0) -> set[str]:
    """Segments present now but not in ``before``.

    Unlink can lag a terminated pool by a beat, so re-check for up to
    ``grace_s`` before declaring a leak.
    """
    deadline = time.monotonic() + grace_s
    while True:
        leaked = shm_segments() - before
        if not leaked or time.monotonic() >= deadline:
            return leaked
        time.sleep(0.05)


@contextlib.contextmanager
def assert_no_shm_leak(*, grace_s: float = 1.0) -> Iterator[None]:
    """Assert the wrapped block leaks no shared-memory segments.

    The assertion runs even when the block raises, so a test can wrap
    a call it *expects* to fail and still check teardown::

        with assert_no_shm_leak():
            with pytest.raises(FaultError):
                components(img, fault_plan=plan, degrade=False)
    """
    before = shm_segments()
    try:
        yield
    finally:
        leaked = leaked_since(before, grace_s=grace_s)
        if leaked:
            raise AssertionError(
                f"leaked shared-memory segment(s): {sorted(leaked)} "
                f"(check every SharedNDArray error path unlinks)"
            )

"""Declarative, seeded fault plans.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries plus a
seed.  Everything about it is deterministic: whether a spec fires at a
given site invocation depends only on the plan's seed, the spec, the
site's selectors (merge round, group, task index) and the *attempt
number* of the invocation -- never on wall-clock time or global RNG
state.  Running the same plan against the same input twice therefore
injects exactly the same faults, which is what lets the chaos test
matrix assert bit-identity.

Sites
-----
``hist:band``
    One band-tally task of the process-parallel histogram
    (``task`` selects the band index).
``cc:label``
    One tile-labeling task of the process-parallel components
    (``task`` selects the processor/tile id).
``cc:merge``
    One border-merge task (``round`` selects the merge iteration,
    0-based; ``group`` the border group within it).
``cc:final``
    One final interior-relabel task (``task`` = tile id).
``sim:merge``
    A processor fault at a merge-round boundary of the **BDM
    simulator** (``round``/``group`` as above).  ``target`` chooses
    which end of the border dies: ``"manager"`` (default -- the shadow
    manager fails over), ``"shadow"`` (the manager solves both sides
    itself), or ``"both"`` (unrecoverable; the run raises
    :class:`~repro.utils.errors.FailoverError`).
``svc:exec``
    One request-execution task of the batch-serving layer
    (:mod:`repro.service`; ``task`` selects the request's index within
    its batch).  Lets ``repro serve --fault-plan`` exercise degraded
    serving: the dispatcher retries/respawns underneath the batch and
    the executor falls back to in-process serial compute when recovery
    is exhausted.
``svc:route``
    One forward of a request from the shard router to a shard
    (:mod:`repro.service.router`; ``task`` selects the shard index,
    ``attempt`` the routing attempt).  ``hang`` delays the forward past
    the hedge budget (exercising hedged retries), ``exception`` fails
    it (exercising ring-successor rerouting).
``darray:border``
    One border-exchange task of the distributed-array ``shmem``
    transport (:mod:`repro.darray`; ``round`` selects the merge
    iteration, ``group`` the border group).  ``corrupt`` damages the
    fetched border payload, which the transport's validation detects
    and reports as the retryable
    :class:`~repro.utils.errors.CorruptPayloadError`.
``darray:fetch``
    One change-array fetch/apply task of the ``shmem`` transport:
    region tiles fetching the published change list and relabeling
    their perimeters (``round``/``group`` as above).
``svc:health``
    One health probe of the router's per-shard monitor
    (:mod:`repro.service.health`; ``task`` selects the shard index,
    ``attempt`` the probe sequence number).  ``hang``/``exception``
    make the probe miss its deadline, driving the shard's breaker
    open without harming a real process.

Kinds
-----
``crash``
    The worker process dies hard (``os._exit``); for ``sim:merge`` the
    named processor drops its protocol role for the round.
``hang``
    The worker sleeps past its deadline (``delay_s``, default well
    past any sane timeout); the dispatcher cuts it off.
``exception``
    The task raises :class:`~repro.utils.errors.TransientTaskError`.
``corrupt``
    Only at ``cc:merge`` and ``darray:border``: the fetched border
    payload is corrupted (labels negated), which the consuming task's
    validation detects and reports as
    :class:`~repro.utils.errors.CorruptPayloadError`.

Faults fire at *task entry*, before the task mutates shared state, so
a retried task always starts from a consistent view.

JSON schema (``repro-faults/v1``)::

    {"schema": "repro-faults/v1",
     "seed": 0,
     "faults": [{"site": "cc:merge", "kind": "crash",
                 "round": 1, "group": 0, "times": 1}]}
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from repro.utils.errors import ValidationError

#: Plan schema identifier embedded in serialized plans.
SCHEMA = "repro-faults/v1"

#: Recognized fault sites.
SITES = (
    "hist:band", "cc:label", "cc:merge", "cc:final", "sim:merge",
    "svc:exec", "svc:shmem", "svc:route", "svc:health",
    "darray:border", "darray:fetch",
)

#: Recognized fault kinds.
KINDS = ("crash", "hang", "exception", "corrupt")

#: ``sim:merge`` targets.
TARGETS = ("manager", "shadow", "both")

#: Default sleep of a ``hang`` fault -- far beyond any sane deadline,
#: so the dispatcher's timeout (not the sleep) ends the task.
DEFAULT_HANG_S = 3600.0


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault.

    ``None`` selectors are wildcards: a spec with ``round=None``
    matches every merge round.  ``times`` bounds how many *attempts* of
    a matching invocation fire (attempts 0..times-1); ``times=-1``
    means every attempt, which defeats retry and forces degradation or
    a typed error.  ``probability`` thins firing decisions
    deterministically from the plan seed.
    """

    site: str
    kind: str
    round: int | None = None
    group: int | None = None
    task: int | None = None
    target: str = "manager"
    times: int = 1
    probability: float = 1.0
    delay_s: float | None = None

    def __post_init__(self):
        if self.site not in SITES:
            raise ValidationError(f"unknown fault site {self.site!r}; known: {list(SITES)}")
        if self.kind not in KINDS:
            raise ValidationError(f"unknown fault kind {self.kind!r}; known: {list(KINDS)}")
        if self.kind == "corrupt" and self.site not in (
            "cc:merge", "svc:shmem", "darray:border",
        ):
            raise ValidationError(
                "kind 'corrupt' is only defined for sites 'cc:merge', "
                "'svc:shmem', and 'darray:border'"
            )
        if self.site == "sim:merge" and self.kind != "crash":
            raise ValidationError("site 'sim:merge' models processor loss; use kind 'crash'")
        if self.site in ("svc:route", "svc:health") and self.kind not in ("hang", "exception"):
            raise ValidationError(
                f"site {self.site!r} runs on the router's event loop; only "
                f"'hang' and 'exception' are defined (kill shard *processes* "
                f"with 'repro chaos --tier service' instead)"
            )
        if self.target not in TARGETS:
            raise ValidationError(f"unknown target {self.target!r}; known: {list(TARGETS)}")
        if self.times < -1 or self.times == 0:
            raise ValidationError("times must be a positive count or -1 (every attempt)")
        if not (0.0 <= self.probability <= 1.0):
            raise ValidationError("probability must be within [0, 1]")
        if self.delay_s is not None and self.delay_s < 0:
            raise ValidationError("delay_s must be non-negative")

    def matches(self, site: str, *, round=None, group=None, task=None, attempt=0) -> bool:
        """Does this spec select the given site invocation attempt?"""
        if site != self.site:
            return False
        for mine, theirs in ((self.round, round), (self.group, group), (self.task, task)):
            if mine is not None and mine != theirs:
                return False
        return self.times == -1 or attempt < self.times

    @property
    def hang_s(self) -> float:
        return DEFAULT_HANG_S if self.delay_s is None else self.delay_s

    def describe(self) -> str:
        sel = [
            f"{k}={v}"
            for k, v in (("round", self.round), ("group", self.group), ("task", self.task))
            if v is not None
        ]
        if self.site == "sim:merge":
            sel.append(f"target={self.target}")
        if self.times != 1:
            sel.append(f"times={self.times}")
        inner = f"[{','.join(sel)}]" if sel else ""
        return f"{self.kind}@{self.site}{inner}"


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus an ordered list of :class:`FaultSpec` entries.

    The plan is picklable (it crosses the pool-initializer boundary
    into workers) and JSON round-trippable via :meth:`to_json` /
    :meth:`from_json`.
    """

    seed: int = 0
    faults: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "faults", tuple(self.faults))

    def match(self, site: str, *, round=None, group=None, task=None, attempt=0):
        """First spec that fires for this invocation, or ``None``.

        The firing decision of a probabilistic spec is a deterministic
        hash of (seed, spec index, site, selectors, attempt).
        """
        hits = self.match_all(site, round=round, group=group, task=task, attempt=attempt)
        return hits[0] if hits else None

    def match_all(self, site: str, *, round=None, group=None, task=None, attempt=0):
        """Every spec that fires for this invocation (see :meth:`match`).

        The simulator uses this to combine losses: separate manager and
        shadow specs on the same round/group add up to an unrecoverable
        double loss.
        """
        hits = []
        for index, spec in enumerate(self.faults):
            if not spec.matches(site, round=round, group=group, task=task, attempt=attempt):
                continue
            if spec.probability < 1.0:
                key = f"{self.seed}:{index}:{site}:{round}:{group}:{task}:{attempt}"
                digest = hashlib.sha256(key.encode()).digest()
                draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
                if draw >= spec.probability:
                    continue
            hits.append(spec)
        return hits

    def sites(self) -> set[str]:
        return {spec.site for spec in self.faults}

    @property
    def is_empty(self) -> bool:
        return not self.faults

    # -- serialization -----------------------------------------------------

    def to_json(self) -> dict:
        return {
            "schema": SCHEMA,
            "seed": self.seed,
            "faults": [_spec_dict(spec) for spec in self.faults],
        }

    @classmethod
    def from_json(cls, obj) -> "FaultPlan":
        if not isinstance(obj, dict):
            raise ValidationError("fault plan must be a JSON object")
        if obj.get("schema", SCHEMA) != SCHEMA:
            raise ValidationError(f"unknown fault-plan schema {obj.get('schema')!r}")
        faults = obj.get("faults", [])
        if not isinstance(faults, list):
            raise ValidationError("'faults' must be a list")
        specs = []
        known = {f.name for f in FaultSpec.__dataclass_fields__.values()}
        for i, entry in enumerate(faults):
            if not isinstance(entry, dict):
                raise ValidationError(f"faults[{i}] is not an object")
            unknown = set(entry) - known
            if unknown:
                raise ValidationError(f"faults[{i}] has unknown key(s): {sorted(unknown)}")
            try:
                specs.append(FaultSpec(**entry))
            except TypeError as exc:
                raise ValidationError(f"faults[{i}]: {exc}") from exc
        seed = obj.get("seed", 0)
        if not isinstance(seed, int):
            raise ValidationError("'seed' must be an integer")
        return cls(seed=seed, faults=tuple(specs))

    @classmethod
    def load(cls, path) -> "FaultPlan":
        with open(path) as fh:
            try:
                obj = json.load(fh)
            except json.JSONDecodeError as exc:
                raise ValidationError(f"{path}: not valid JSON: {exc}") from exc
        return cls.from_json(obj)

    def dump(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=1)
            fh.write("\n")

    def describe(self) -> str:
        if self.is_empty:
            return "(empty plan)"
        return " + ".join(spec.describe() for spec in self.faults)


def _spec_dict(spec: FaultSpec) -> dict:
    defaults = {f.name: f.default for f in FaultSpec.__dataclass_fields__.values()}
    return {
        k: v
        for k, v in asdict(spec).items()
        if k in ("site", "kind") or v != defaults.get(k)
    }


def single_fault_plans(
    *,
    workload: str,
    engine: str,
    n_rounds: int,
    n_tasks: int,
    seed: int = 0,
) -> list[FaultPlan]:
    """The chaos matrix: every single-fault plan for a workload/engine.

    ``n_rounds`` is the number of merge iterations of the processor
    grid actually used, ``n_tasks`` the worker/band count.  Each
    returned plan injects exactly one fault; the matrix covers every
    kind at a representative task plus every merge round.
    """
    if workload not in ("histogram", "components"):
        raise ValidationError(f"unknown workload {workload!r}")
    if engine not in ("process", "sim", "darray"):
        raise ValidationError(f"unknown engine {engine!r}")
    plans: list[FaultPlan] = []

    def add(**kw):
        plans.append(FaultPlan(seed=seed, faults=(FaultSpec(**kw),)))

    if engine == "darray":
        if workload != "components":
            raise ValidationError("the darray fault sites cover components only")
        for kind in ("crash", "hang", "exception"):
            for rnd in range(n_rounds):
                add(site="darray:border", kind=kind, round=rnd, group=0)
            add(site="darray:fetch", kind=kind, round=n_rounds - 1, group=0)
        for rnd in range(n_rounds):
            add(site="darray:border", kind="corrupt", round=rnd, group=0)
        return plans

    if engine == "process":
        if workload == "histogram":
            for kind in ("crash", "hang", "exception"):
                add(site="hist:band", kind=kind, task=0)
                if n_tasks > 1:
                    add(site="hist:band", kind=kind, task=n_tasks - 1)
        else:
            for kind in ("crash", "hang", "exception"):
                add(site="cc:label", kind=kind, task=0)
                add(site="cc:final", kind=kind, task=n_tasks - 1)
                for rnd in range(n_rounds):
                    add(site="cc:merge", kind=kind, round=rnd, group=0)
            for rnd in range(n_rounds):
                add(site="cc:merge", kind="corrupt", round=rnd, group=0)
    else:
        if workload != "components":
            raise ValidationError("the simulator fault model covers components only")
        for rnd in range(n_rounds):
            add(site="sim:merge", kind="crash", round=rnd, group=0, target="manager")
            add(site="sim:merge", kind="crash", round=rnd, group=0, target="shadow")
    return plans

"""Worker/driver-side fault injection.

The driver serializes the active :class:`~repro.faults.plan.FaultPlan`
into each pool worker through the pool initializer
(:func:`install_plan`); task functions then call :func:`fire` at entry
with their site and selectors.  With no plan installed the call is a
cheap no-op, so the production path pays nothing.

Faults fire **at task entry**, before any shared-memory mutation, so a
killed or retried task never leaves a half-updated tile behind.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.faults.plan import FaultPlan, FaultSpec
from repro.utils.errors import TransientTaskError

#: Exit code of an injected worker crash (visible in pool diagnostics).
CRASH_EXIT_CODE = 70

#: The plan installed in this process (worker side), or None.
_PLAN: FaultPlan | None = None


def install_plan(plan: FaultPlan | None) -> None:
    """Install ``plan`` as this process's active fault plan."""
    global _PLAN
    _PLAN = plan


def active_plan() -> FaultPlan | None:
    return _PLAN


def fire(site: str, *, round=None, group=None, task=None, attempt: int = 0) -> FaultSpec | None:
    """Inject the matching fault for this invocation, if any.

    ``crash`` exits the process hard, ``hang`` sleeps past the
    deadline, ``exception`` raises
    :class:`~repro.utils.errors.TransientTaskError`.  A matching
    ``corrupt`` spec is *returned* instead of acted on -- the caller
    owns the payload and applies :func:`corrupt_labels` itself.
    """
    if _PLAN is None:
        return None
    spec = _PLAN.match(site, round=round, group=group, task=task, attempt=attempt)
    if spec is None:
        return None
    if spec.kind == "crash":
        # Hard death, as a segfault would be: no cleanup, no exception
        # crossing back to the driver.  The task's deadline expiring is
        # the only signal the driver gets.
        os._exit(CRASH_EXIT_CODE)
    if spec.kind == "hang":
        time.sleep(spec.hang_s)
        return None
    if spec.kind == "exception":
        raise TransientTaskError(
            f"injected transient fault at {site} "
            f"(round={round}, group={group}, task={task}, attempt={attempt})",
            site=site,
        )
    return spec  # corrupt: caller applies it to the payload


async def fire_async(site: str, *, round=None, group=None, task=None,
                     attempt: int = 0) -> FaultSpec | None:
    """Event-loop-safe :func:`fire` for the router's ``svc:route`` /
    ``svc:health`` sites.

    A ``hang`` spec awaits ``asyncio.sleep`` instead of blocking the
    loop (a blocked router loop would stall *every* shard's traffic,
    not just the faulted one); the other kinds behave exactly as
    :func:`fire`.
    """
    if _PLAN is None:
        return None
    spec = _PLAN.match(site, round=round, group=group, task=task, attempt=attempt)
    if spec is None:
        return None
    if spec.kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    if spec.kind == "hang":
        import asyncio

        await asyncio.sleep(spec.hang_s)
        return None
    if spec.kind == "exception":
        raise TransientTaskError(
            f"injected transient fault at {site} "
            f"(round={round}, group={group}, task={task}, attempt={attempt})",
            site=site,
        )
    return spec


def corrupt_labels(labels: np.ndarray) -> np.ndarray:
    """Return a corrupted copy of a border label payload.

    Foreground labels are negated -- impossible under the engine's
    label convention (background 0, labels >= 1), so
    :func:`validate_border_labels` always detects the damage.
    """
    out = np.array(labels, copy=True)
    out[out > 0] *= -1
    return out


def corrupt_pixels(image: np.ndarray) -> np.ndarray:
    """Return a bit-flipped copy of a shared-memory image payload.

    Every pixel's low bit is toggled, so the copy can never hash to the
    descriptor's digest -- :func:`repro.runtime.shmem.
    verify_descriptor_digest` always detects the damage (the
    ``svc:shmem`` analogue of :func:`corrupt_labels`).
    """
    return np.array(image, copy=True) ^ 1


def validate_border_labels(labels: np.ndarray, *, site: str = "cc:merge") -> None:
    """Reject a border payload carrying out-of-range labels.

    Raises :class:`~repro.utils.errors.CorruptPayloadError` -- a
    retryable fault: the dispatcher re-runs the merge task, which
    re-extracts the payload from shared memory.
    """
    from repro.utils.errors import CorruptPayloadError

    labels = np.asarray(labels)
    if labels.size and int(labels.min()) < 0:
        bad = int((labels < 0).sum())
        raise CorruptPayloadError(
            f"border payload failed validation: {bad} negative label(s)", site=site
        )

"""Legacy setup shim.

The environment ships setuptools 65 without the ``wheel`` package, so
PEP 660 editable installs cannot build; ``pip install -e . --no-use-pep517``
goes through this file instead.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
